"""Telemetry plane end to end: spans across the fabric, registry
superset of the legacy dicts, and zero effect on results.

The acceptance scenario mirrors the paper's serving story: a
multi-node sim cluster runs a matmul -> spmv pipeline through the
service, chaos kills one node mid-pipeline, and the run exports a
single Chrome-trace JSON where the replayed job's admit / queue /
dispatch / node-execute / retry spans share one trace id across the
host and node processes.
"""

import json

import numpy as np
import pytest

from repro.core import HaoCLSession
from repro.serve import HaoCLService, Job
from repro.serve.job import DONE
from repro.serve.service import TENANT_COUNTERS
from repro.testing import ChaosPlan
from repro.workloads import get_workload

MATMUL = """
__kernel void mm_stage(__global float* C, __global const float* A,
                     __global const float* B, int n) {
    int i = get_global_id(0);
    int j = get_global_id(1);
    float acc = 0.0f;
    for (int k = 0; k < n; ++k) acc += A[i*n+k] * B[k*n+j];
    C[i*n+j] = acc;
}
"""

SPMV = """
__kernel void spmv_stage(__global float* y, __global const int* rowptr,
                   __global const int* col, __global const float* val,
                   __global const float* x, int rows) {
    int i = get_global_id(0);
    if (i < rows) {
        float acc = 0.0f;
        for (int k = rowptr[i]; k < rowptr[i+1]; ++k)
            acc += val[k] * x[col[k]];
        y[i] = acc;
    }
}
"""

N = 12


def matmul_job(tenant, seed):
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((N, N)).astype(np.float32)
    b = rng.standard_normal((N, N)).astype(np.float32)
    c = np.zeros((N, N), dtype=np.float32)
    return Job(tenant, MATMUL, "mm_stage", [c, a, b, np.int32(N)], (N, N))


def spmv_job(tenant, dense):
    """CSR spmv over the (fully dense) matmul output of the same tenant."""
    rows = dense.shape[0]
    rowptr = np.arange(0, rows * rows + 1, rows, dtype=np.int32)
    col = np.tile(np.arange(rows, dtype=np.int32), rows)
    val = np.ascontiguousarray(dense.reshape(-1))
    x = np.linspace(1.0, 2.0, rows).astype(np.float32)
    y = np.zeros(rows, dtype=np.float32)
    return Job(tenant, SPMV, "spmv_stage",
               [y, rowptr, col, val, x, np.int32(rows)], (rows,))


def spans_by_trace(spans, trace_id):
    return [s for s in spans if s["trace"] == trace_id]


class TestSpanParentingAcrossFabric:
    def test_node_execute_span_parents_to_host_launch_span(self):
        """The host's launch span context rides the message frame; the
        NMP's execute span must come back parented under it."""
        with HaoCLSession(gpu_nodes=2, mode="modeled", transport="sim",
                          trace=True) as session:
            ctx = session.context()
            program = session.program(ctx, MATMUL)
            a = session.synthetic_buffer(ctx, N * N * 4)
            b = session.synthetic_buffer(ctx, N * N * 4)
            c = session.synthetic_buffer(ctx, N * N * 4)
            kernel = session.kernel(program, "mm_stage", c, a, b, np.int32(N))
            queue = session.queue(ctx, session.devices[0])
            session.enqueue(queue, kernel, (N, N))
            session.finish(queue)
            session.host.drain_traces()
            spans = session.telemetry.tracer.spans()

        launches = [s for s in spans if s["name"] == "launch"]
        executes = [s for s in spans if s["name"] == "nmp.execute"]
        assert launches and executes
        launch, execute = launches[0], executes[0]
        assert launch["proc"] == "host"
        assert execute["proc"].startswith("node:")
        assert execute["trace"] == launch["trace"]
        assert execute["parent"] == launch["span"]
        # node spans carry fabric (sim) timestamps inside the host span
        assert execute["start_s"] >= 0.0
        assert execute["dur_s"] > 0.0

    def test_tracing_in_sim_time_uses_the_sim_clock(self):
        with HaoCLSession(gpu_nodes=1, mode="modeled", transport="sim",
                          trace=True) as session:
            ctx = session.context()
            program = session.program(ctx, MATMUL)
            a = session.synthetic_buffer(ctx, N * N * 4)
            b = session.synthetic_buffer(ctx, N * N * 4)
            c = session.synthetic_buffer(ctx, N * N * 4)
            kernel = session.kernel(program, "mm_stage", c, a, b, np.int32(N))
            queue = session.queue(ctx, session.devices[0])
            session.enqueue(queue, kernel, (N, N))
            session.finish(queue)
            horizon = session.now_s()
            spans = session.telemetry.tracer.spans()
        assert horizon > 0.0
        for span in spans:
            # sim timestamps, not perf_counter epochs
            assert 0.0 <= span["start_s"] <= horizon + 1.0


class TestTelemetryDoesNotPerturbResults:
    @pytest.mark.parametrize("name", ["matrixmul", "spmv"])
    def test_results_bit_identical_with_telemetry_on(self, name):
        workload = get_workload(name)
        inputs = workload.generate(16 if name == "matrixmul" else 48, seed=3)

        def run(**telemetry_kwargs):
            with HaoCLSession(gpu_nodes=2, mode="real",
                              transport="inproc",
                              **telemetry_kwargs) as session:
                return workload.run(session, inputs, session.devices)

        plain = run()
        traced = run(trace=True)

        def arrays(outputs):
            if isinstance(outputs, dict):
                return [(key, np.asarray(outputs[key]))
                        for key in sorted(outputs)]
            return [("output", np.asarray(outputs))]

        for (key_a, a), (key_b, b) in zip(arrays(plain), arrays(traced)):
            assert key_a == key_b
            assert a.dtype == b.dtype
            assert a.tobytes() == b.tobytes(), key_a  # bit-identical


def run_pipeline(trace_path=None, chaos=None):
    """matmul -> spmv through the service; returns (jobs, fault, spans)."""
    with HaoCLSession(gpu_nodes=3, mode="real", transport="sim",
                      chaos=chaos, trace=trace_path is not None) as session:
        with HaoCLService(session, max_retries=3, replicas=2) as service:
            tenants = ["t0", "t1"]
            for tenant in tenants:
                service.register_tenant(tenant)
            stage1 = [matmul_job(tenants[i % 2], seed=i) for i in range(6)]
            for job in stage1:
                service.submit(job)
            service.run()
            assert all(job.state == DONE for job in stage1)
            stage2 = [spmv_job(job.tenant, job.result["C"])
                      for job in stage1]
            for job in stage2:
                service.submit(job)
            service.run()
            assert all(job.state == DONE for job in stage2)
            fault = service.fault_stats()
            spans = []
            if trace_path is not None:
                session.dump_trace(trace_path)
                spans = session.telemetry.tracer.spans()
    # the math survived any kill: validate one spmv against NumPy
    dense = stage1[0].result["C"]
    x = np.linspace(1.0, 2.0, N).astype(np.float32)
    assert np.allclose(stage2[0].result["y"], dense @ x,
                       rtol=1e-4, atol=1e-4)
    return stage1 + stage2, fault, spans


class TestChaosPipelineTrace:
    """The acceptance scenario from the issue."""

    @pytest.fixture(scope="class")
    def pipeline(self, tmp_path_factory):
        # discover deterministically where the first job lands, then
        # replay the identical pipeline with that node killed
        clean_jobs, clean_fault, _ = run_pipeline()
        assert clean_fault["node_losses"] == 0
        victim = clean_jobs[0].device.node_id
        plan = ChaosPlan(seed=7)
        plan.kill(victim, method="enqueue_ndrange", occurrence=2)
        path = str(tmp_path_factory.mktemp("trace") / "pipeline_trace.json")
        jobs, fault, spans = run_pipeline(trace_path=path, chaos=plan)
        return jobs, fault, path, spans

    def test_one_trace_stitches_the_replayed_job_across_processes(
            self, pipeline):
        jobs, fault, path, spans = pipeline
        assert fault["node_losses"] >= 1
        assert fault["jobs_replayed"] >= 1

        replayed = [job for job in jobs if job.attempts >= 1]
        assert replayed
        # among the replayed jobs, at least one trace tells the whole
        # story: admit -> queue -> dispatch -> node execute -> retry
        full = []
        for job in replayed:
            names = {s["name"] for s in spans_by_trace(spans,
                                                       job.trace.trace_id)}
            if {"serve.admit", "serve.queue", "serve.dispatch",
                    "serve.retry", "nmp.execute"} <= names:
                full.append(job)
        assert full, "no replayed job produced a complete lifecycle trace"
        job = full[0]
        trace = spans_by_trace(spans, job.trace.trace_id)
        procs = {s["proc"] for s in trace}
        assert "host" in procs
        assert any(p.startswith("node:") for p in procs)
        # the chaos fault itself is an instant event in a job's trace
        kills = [s for s in spans if s["name"] == "chaos.kill"]
        assert kills
        job_traces = {j.trace.trace_id for j in jobs}
        assert kills[0]["trace"] in job_traces
        # replica placement moved bytes over the peer data plane, and
        # those node-side transfer spans joined the jobs' traces too
        pushes = [s for s in spans if s["name"] == "dmp.push"]
        assert pushes
        assert any(p["trace"] in job_traces for p in pushes)

    def test_chrome_export_is_one_valid_file_covering_all_processes(
            self, pipeline):
        _jobs, _fault, path, _spans = pipeline
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
        events = doc["traceEvents"]
        proc_names = {e["args"]["name"] for e in events if e["ph"] == "M"}
        assert "host" in proc_names
        assert sum(1 for p in proc_names if p.startswith("node:")) >= 2
        names = {e["name"] for e in events}
        for expected in ("serve.admit", "serve.dispatch", "nmp.execute",
                         "dmp.push", "serve.retry", "chaos.kill"):
            assert expected in names, expected


class TestSnapshotSupersetsLegacyDicts:
    """One registry snapshot must cover every field of the six legacy
    introspection dicts (they are views over the same series now)."""

    @pytest.fixture(scope="class")
    def served(self):
        with HaoCLSession(gpu_nodes=2, fpga_nodes=1, mode="real",
                          transport="inproc") as session:
            with HaoCLService(session) as service:
                for tenant in ("alice", "bob"):
                    service.register_tenant(tenant)
                for index in range(8):
                    service.submit(matmul_job(
                        "alice" if index % 2 else "bob", seed=index))
                service.run()
                legacy = {
                    "tenants": service.stats(),
                    "accounting": service.cluster_accounting(),
                    "fault": service.fault_stats(),
                    "data_plane": service.data_plane(),
                    "execution": service.execution_stats(),
                    "transfer": session.cl.icd.transfer_stats(),
                    "nodes": session.host.node_stats(),
                }
                snap = session.metrics_snapshot()
        yield legacy, snap

    @staticmethod
    def series(snap, name):
        family = snap.get(name, {"samples": []})
        return {
            tuple(sorted(sample["labels"].items())): sample["value"]
            for sample in family["samples"]
        }

    def value(self, snap, name, **labels):
        return self.series(snap, name).get(tuple(sorted(
            (k, str(v)) for k, v in labels.items())), 0)

    def test_transfer_stats_mirrors_icd_counters(self, served):
        legacy, snap = served
        for key, value in legacy["transfer"].items():
            name = "transfer_count" if key == "transfers" else key
            assert self.value(snap, "haocl_icd_%s_total" % name) == value, key

    def test_tenant_stats_mirror_serve_counters(self, served):
        legacy, snap = served
        for tenant, record in legacy["tenants"].items():
            for field in TENANT_COUNTERS:
                assert self.value(
                    snap, "haocl_serve_jobs_%s_total" % field,
                    tenant=tenant) == record[field], (tenant, field)
            assert self.value(snap, "haocl_serve_service_seconds_total",
                              tenant=tenant) == \
                pytest.approx(record["service_time_s"])
            wait = self.value(snap, "haocl_serve_queue_wait_seconds",
                              tenant=tenant)
            assert wait["count"] == record["completed"]

    def test_fault_stats_mirror_registry(self, served):
        legacy, snap = served
        fault = legacy["fault"]
        assert self.value(snap, "haocl_serve_node_losses_total") == \
            fault["node_losses"]
        assert self.value(snap, "haocl_serve_jobs_replayed_total") == \
            fault["jobs_replayed"] == fault["jobs_retried"]
        assert self.value(snap,
                          "haocl_serve_jobs_replica_recovered_total") == \
            fault["jobs_replica_recovered"] == fault["jobs_recovered"]
        assert self.value(snap, "haocl_serve_jobs_requeued_total") == \
            fault["jobs_requeued"]
        for key in ("nodes_lost", "replicas_lost", "dmp_replicas",
                    "dmp_replica_bytes", "dmp_drains"):
            assert self.value(snap, "haocl_icd_%s_total" % key) == fault[key]

    def test_data_plane_nodes_mirror_node_gauges(self, served):
        legacy, snap = served
        for node_id, dmp in legacy["data_plane"]["nodes"].items():
            for key, value in dmp.items():
                if isinstance(value, (int, float)) and value is not None:
                    assert self.value(snap, "haocl_node_dmp_%s" % key,
                                      node=node_id) == value, (node_id, key)

    def test_execution_stats_mirror_tier_gauges(self, served):
        legacy, snap = served
        for tier, count in legacy["execution"]["tiers"].items():
            total = sum(
                value for labels, value in
                self.series(snap, "haocl_node_tier_launches").items()
                if dict(labels)["tier"] == tier
            )
            assert total == count, tier
        for key, value in legacy["execution"]["compile_cache"].items():
            if isinstance(value, (int, float)):
                series = self.series(snap, "haocl_node_compile_%s" % key)
                assert value in series.values(), key

    def test_cluster_accounting_mirrors_tenant_gauges(self, served):
        legacy, snap = served
        for tenant, record in legacy["accounting"].items():
            launches = sum(
                value for labels, value in
                self.series(snap, "haocl_node_tenant_launches").items()
                if dict(labels)["tenant"] == tenant
            )
            assert launches == record["launches"], tenant
            jobs = sum(
                value for labels, value in
                self.series(snap, "haocl_node_tenant_jobs").items()
                if dict(labels)["tenant"] == tenant
            )
            assert jobs == record["jobs"], tenant

    def test_node_stats_mirror_node_gauges(self, served):
        legacy, snap = served
        for node_id, stats in legacy["nodes"].items():
            scraped = self.value(snap, "haocl_node_messages", node=node_id)
            # each node_stats() sweep between the legacy read and the
            # snapshot scrape adds one message per node
            assert abs(stats["messages"] - scraped) <= 4, node_id
            for kernel, prof in stats["kernels"].items():
                assert self.value(snap, "haocl_node_kernel_launches",
                                  node=node_id, kernel=kernel) == \
                    prof["count"], (node_id, kernel)
            for handle, dev in stats["devices"].items():
                assert self.value(
                    snap, "haocl_node_device_busy_seconds", node=node_id,
                    device=handle, type=dev["type_name"]) == \
                    pytest.approx(dev["busy_s"]), (node_id, handle)
