"""Unit tests for the metrics registry: families, labels, histograms."""

import json

import pytest

from repro.obs import MetricsRegistry, log_buckets


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestCounters:
    def test_label_free_counter_proxies_default_child(self, registry):
        counter = registry.counter("jobs_total", "jobs")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        assert registry.value("jobs_total") == 5

    def test_counters_reject_negative_increments(self, registry):
        counter = registry.counter("ops_total")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_labeled_children_are_independent_and_cached(self, registry):
        family = registry.counter("jobs_total", labels=("tenant",))
        family.labels(tenant="a").inc(2)
        family.labels(tenant="b").inc(7)
        assert registry.value("jobs_total", tenant="a") == 2
        assert registry.value("jobs_total", tenant="b") == 7
        assert family.labels(tenant="a") is family.labels(tenant="a")

    def test_same_name_returns_same_family(self, registry):
        assert registry.counter("x_total") is registry.counter("x_total")

    def test_kind_conflict_rejected(self, registry):
        registry.counter("x_total")
        with pytest.raises(ValueError):
            registry.gauge("x_total")

    def test_label_conflict_rejected(self, registry):
        registry.counter("x_total", labels=("tenant",))
        with pytest.raises(ValueError):
            registry.counter("x_total", labels=("node",))

    def test_missing_series_reads_as_zero(self, registry):
        assert registry.value("never_registered_total") == 0
        registry.counter("y_total", labels=("tenant",))
        assert registry.value("y_total", tenant="ghost") == 0


class TestGauges:
    def test_gauge_set_inc_dec(self, registry):
        gauge = registry.gauge("depth")
        gauge.set(10)
        gauge.inc(3)
        gauge.dec(5)
        assert gauge.value == 8


class TestLogBuckets:
    def test_exponential_bounds(self):
        assert log_buckets(1.0, 2.0, 4) == [1.0, 2.0, 4.0, 8.0]

    def test_invalid_parameters(self):
        for start, factor, count in ((0, 2.0, 4), (1.0, 1.0, 4), (1.0, 2.0, 0)):
            with pytest.raises(ValueError):
                log_buckets(start, factor, count)


class TestHistograms:
    def test_boundary_values_are_le_inclusive(self, registry):
        """Prometheus ``le`` semantics: an observation exactly on a
        bucket bound lands in that bucket, not the next one."""
        hist = registry.histogram("lat_seconds", bounds=[1.0, 2.0, 4.0])
        child = hist.labels()
        child.observe(1.0)   # exactly on the first bound
        child.observe(2.0)   # exactly on the second
        child.observe(0.5)   # below everything
        assert child.counts == [2, 1, 0, 0]

    def test_overflow_lands_in_inf_bucket(self, registry):
        hist = registry.histogram("lat_seconds", bounds=[1.0, 2.0])
        child = hist.labels()
        child.observe(100.0)
        assert child.counts == [0, 0, 1]
        sample = child.sample()
        # the +Inf bucket is implied: cumulative bucket counts stop at
        # the last finite bound, total count covers the overflow
        assert sample["buckets"] == [[1.0, 0], [2.0, 0]]
        assert sample["count"] == 1

    def test_sample_is_cumulative(self, registry):
        hist = registry.histogram("lat_seconds", bounds=[1.0, 2.0, 4.0])
        for value in (0.5, 1.5, 1.6, 3.0):
            hist.observe(value)
        sample = hist.labels().sample()
        assert sample["buckets"] == [[1.0, 1], [2.0, 3], [4.0, 4]]
        assert sample["count"] == 4
        assert sample["sum"] == pytest.approx(6.6)

    def test_default_bounds_are_log_buckets(self, registry):
        hist = registry.histogram("lat_seconds")
        assert hist.bounds == log_buckets()


class TestSnapshot:
    def test_snapshot_is_json_serializable(self, registry):
        registry.counter("a_total", "help a").inc(3)
        registry.gauge("b", labels=("node",)).labels(node="n0").set(1.5)
        registry.histogram("c_seconds", bounds=[1.0]).observe(0.5)
        snap = registry.snapshot()
        assert json.loads(json.dumps(snap)) == snap
        assert snap["a_total"]["type"] == "counter"
        assert snap["a_total"]["samples"][0]["value"] == 3
        assert snap["b"]["samples"][0]["labels"] == {"node": "n0"}

    def test_collector_runs_at_read_time(self, registry):
        seen = []

        def collect(reg):
            seen.append(True)
            reg.gauge("scraped").set(42)

        registry.register_collector(collect)
        assert not seen
        snap = registry.snapshot()
        assert seen == [True]
        assert snap["scraped"]["samples"][0]["value"] == 42
        registry.unregister_collector(collect)
        registry.snapshot()
        assert len(seen) == 1

    def test_collector_reading_registry_does_not_recurse(self, registry):
        def collect(reg):
            reg.snapshot()  # must not re-enter the collector

        registry.register_collector(collect)
        registry.snapshot()


class TestPrometheusExposition:
    def test_counter_and_gauge_lines(self, registry):
        registry.counter("jobs_total", "All jobs",
                         labels=("tenant",)).labels(tenant="a").inc(3)
        registry.gauge("depth").set(2)
        text = registry.render_prometheus()
        assert "# HELP jobs_total All jobs" in text
        assert "# TYPE jobs_total counter" in text
        assert 'jobs_total{tenant="a"} 3' in text
        assert "depth 2" in text
        assert text.endswith("\n")

    def test_histogram_exposition_shape(self, registry):
        hist = registry.histogram("lat_seconds", bounds=[1.0, 2.0])
        hist.observe(0.5)
        hist.observe(1.5)
        text = registry.render_prometheus()
        assert 'lat_seconds_bucket{le="1.0"} 1' in text
        assert 'lat_seconds_bucket{le="2.0"} 2' in text
        assert 'lat_seconds_bucket{le="+Inf"} 2' in text
        assert "lat_seconds_sum 2.0" in text
        assert "lat_seconds_count 2" in text

    def test_label_values_are_escaped(self, registry):
        registry.counter("x_total", labels=("k",)).labels(k='a"b\\c').inc()
        text = registry.render_prometheus()
        assert 'x_total{k="a\\"b\\\\c"} 1' in text
