"""Unit tests for the tracer and trace-context wire propagation."""

import json

import pytest

from repro.obs import NULL_SPAN, TraceContext, Tracer
from repro.transport.message import Message, MessageKind, SerializationError


class FakeClock:
    """Deterministic manual clock: every read advances by ``step``."""

    def __init__(self, step=1.0):
        self.now = 0.0
        self.step = step

    def __call__(self):
        value = self.now
        self.now += self.step
        return value


def tracer(**kwargs):
    kwargs.setdefault("enabled", True)
    kwargs.setdefault("clock", FakeClock())
    return Tracer(**kwargs)


class TestTraceContext:
    def test_wire_roundtrip(self):
        ctx = TraceContext("host-1", "host-2")
        assert TraceContext.from_wire(ctx.to_wire()) == ctx

    def test_garbled_wire_parses_as_none(self):
        for raw in (None, "", "no-separator", "/x", "x/"):
            assert TraceContext.from_wire(raw) is None


class TestSpans:
    def test_disabled_tracer_returns_shared_null_span(self):
        off = Tracer(enabled=False)
        assert off.span("x") is NULL_SPAN
        assert off.resume(TraceContext("t", "s")) is NULL_SPAN
        with off.span("x") as ctx:
            assert ctx is None
        assert off.record("x", 0.0, 1.0) is None
        assert off.spans() == []

    def test_nested_spans_parent_and_share_trace(self):
        t = tracer()
        with t.span("outer") as outer_ctx:
            with t.span("inner") as inner_ctx:
                assert inner_ctx.trace_id == outer_ctx.trace_id
        outer, inner = {s["name"]: s for s in t.spans()}.get("outer"), \
            {s["name"]: s for s in t.spans()}.get("inner")
        assert outer["parent"] is None
        assert inner["parent"] == outer["span"]
        assert inner["trace"] == outer["trace"]
        # the manual clock steps once per read: durations are positive
        assert inner["dur_s"] > 0 and outer["dur_s"] > 0
        assert t.current() is None  # stack unwound

    def test_resume_installs_foreign_context(self):
        t = tracer()
        root = t.new_trace()
        with t.resume(root):
            with t.span("child"):
                pass
        (span,) = t.spans()
        assert span["trace"] == root.trace_id
        assert span["parent"] == root.span_id

    def test_resume_accepts_wire_string(self):
        t = tracer()
        with t.resume("trace-9/span-7"):
            assert t.current_wire() == "trace-9/span-7"

    def test_record_with_wire_parent_mints_child(self):
        """The node-side form: the parent arrived in a message frame."""
        t = tracer(proc="node:gpu0")
        ctx = t.record("nmp.execute", 1.0, 0.5, parent="trace-1/span-1")
        (span,) = t.spans()
        assert span["trace"] == "trace-1"
        assert span["parent"] == "span-1"
        assert span["span"] == ctx.span_id
        assert span["proc"] == "node:gpu0"
        assert span["span"].startswith("node:gpu0-")

    def test_event_is_instant_under_current_context(self):
        t = tracer()
        with t.span("outer") as ctx:
            t.event("chaos.kill", node="gpu0")
        event = [s for s in t.spans() if s["name"] == "chaos.kill"][0]
        assert event["dur_s"] is None
        assert event["trace"] == ctx.trace_id
        assert event["parent"] == ctx.span_id
        assert event["args"] == {"node": "gpu0"}

    def test_drain_and_ingest(self):
        node = tracer(proc="node:gpu0")
        node.record("nmp.execute", 0.0, 1.0, parent="t/s")
        host = tracer()
        host.ingest(node.drain())
        assert node.spans() == []
        assert [s["name"] for s in host.spans()] == ["nmp.execute"]

    def test_buffer_is_bounded(self):
        t = tracer(max_spans=3)
        for index in range(5):
            t.record("s%d" % index, 0.0, 1.0)
        assert [s["name"] for s in t.spans()] == ["s2", "s3", "s4"]


class TestMessageTracePropagation:
    def test_trace_rides_the_frame(self):
        message = Message(MessageKind.REQUEST, "enqueue_ndrange",
                          {"n": 3}, trace="host-1/host-2")
        out = Message.from_bytes(message.to_bytes())
        assert out.trace == "host-1/host-2"
        assert out.method == "enqueue_ndrange"
        assert out.payload == {"n": 3}
        assert out.msg_id == message.msg_id
        assert TraceContext.from_wire(out.trace) == \
            TraceContext("host-1", "host-2")

    def test_no_trace_is_the_default(self):
        message = Message.request("node_stats")
        assert message.trace is None
        assert Message.from_bytes(message.to_bytes()).trace is None

    def test_replies_do_not_echo_the_trace(self):
        request = Message(MessageKind.REQUEST, "x", trace="t/s")
        assert request.reply(ok=True).trace is None
        assert request.fail(-1, "nope").trace is None

    def test_oversized_trace_rejected(self):
        message = Message(MessageKind.REQUEST, "x", trace="t" * 300)
        with pytest.raises(SerializationError):
            message.to_bytes()

    def test_max_size_trace_roundtrips(self):
        raw = "t/" + "s" * 253  # exactly 255 bytes
        message = Message(MessageKind.REQUEST, "x", trace=raw)
        assert Message.from_bytes(message.to_bytes()).trace == raw


class TestChromeExport:
    def test_chrome_trace_shape(self, tmp_path):
        t = tracer()
        with t.span("launch", kernel="saxpy"):
            pass
        t.record("nmp.execute", 0.5, 0.25, parent="t/s", proc="node:gpu0")
        t.event("chaos.kill", node="gpu0")
        path = t.write_chrome(str(tmp_path / "trace.json"))
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
        events = doc["traceEvents"]
        metas = [e for e in events if e["ph"] == "M"]
        assert {m["args"]["name"] for m in metas} == {"host", "node:gpu0"}
        complete = [e for e in events if e["ph"] == "X"]
        assert {e["name"] for e in complete} == {"launch", "nmp.execute"}
        launch = [e for e in complete if e["name"] == "launch"][0]
        assert launch["args"]["kernel"] == "saxpy"
        assert launch["dur"] > 0  # microseconds
        instant = [e for e in events if e["ph"] == "i"]
        assert [e["name"] for e in instant] == ["chaos.kill"]

    def test_processes_get_distinct_pids(self):
        t = tracer()
        t.record("a", 0.0, 1.0, proc="host")
        t.record("b", 0.0, 1.0, proc="node:gpu0")
        t.record("c", 0.0, 1.0, proc="node:gpu1")
        doc = t.chrome_trace()
        pids = {e["args"]["name"]: e["pid"]
                for e in doc["traceEvents"] if e["ph"] == "M"}
        assert len(set(pids.values())) == 3
