"""End-to-end workload correctness on the distributed stack.

Every Table I application runs distributed across multiple nodes with
real data and is validated against its NumPy reference; fast paths are
validated against the interpreter (the justification for using them at
scale).
"""

import numpy as np
import pytest

from repro.core import HaoCLSession
from repro.ocl.fastpath import FastPathRegistry
from repro.workloads import get_workload, partition_ranges, workload_names

SMALL_SCALES = {
    "matrixmul": 24, "knn": 200, "bfs": 150, "spmv": 120, "cfd": 60,
}
TINY_SCALES = {
    "matrixmul": 8, "knn": 40, "bfs": 40, "spmv": 24, "cfd": 10,
}


@pytest.fixture(scope="module")
def cluster():
    with HaoCLSession(gpu_nodes=2, fpga_nodes=1, mode="real",
                      transport="inproc") as session:
        yield session


class TestRegistry:
    def test_all_five_registered(self):
        assert workload_names() == ["bfs", "cfd", "knn", "matrixmul", "spmv"]

    def test_unknown_workload(self):
        with pytest.raises(KeyError):
            get_workload("raytracer")

    def test_kernel_sources_load(self):
        for name in workload_names():
            assert "__kernel" in get_workload(name).source

    def test_table1_metadata(self):
        for name in workload_names():
            workload = get_workload(name)
            assert workload.description
            assert workload.table1_size


class TestPartitioning:
    def test_ranges_cover_exactly(self):
        ranges = partition_ranges(10, 3)
        assert ranges == [(0, 4), (4, 3), (7, 3)]

    def test_more_parts_than_items(self):
        ranges = partition_ranges(2, 4)
        assert sum(count for _start, count in ranges) == 2
        assert len(ranges) == 4

    def test_single_part(self):
        assert partition_ranges(7, 1) == [(0, 7)]

    def test_invalid_parts(self):
        with pytest.raises(ValueError):
            partition_ranges(5, 0)


@pytest.mark.parametrize("name", sorted(SMALL_SCALES))
class TestDistributedCorrectness:
    def test_distributed_run_matches_reference(self, cluster, name):
        workload = get_workload(name)
        inputs = workload.generate(SMALL_SCALES[name], seed=9)
        outputs = workload.run(cluster, inputs, cluster.devices)
        expected = workload.reference(inputs)
        assert workload.validate(outputs, expected), name

    def test_single_device_run(self, cluster, name):
        workload = get_workload(name)
        inputs = workload.generate(SMALL_SCALES[name], seed=4)
        outputs = workload.run(cluster, inputs, cluster.devices[:1])
        assert workload.validate(outputs, workload.reference(inputs)), name


@pytest.mark.parametrize("name", sorted(TINY_SCALES))
def test_execution_tiers_match(name):
    """Runs each app through all three execution tiers -- registered
    NumPy fast paths, the vectorized compiler (empty fast-path registry)
    and the pure interpreter (vectorization disabled too) -- and every
    tier must validate against the reference."""
    workload = get_workload(name)
    inputs = workload.generate(TINY_SCALES[name], seed=13)
    expected = workload.reference(inputs)
    with HaoCLSession(gpu_nodes=2, mode="real", transport="inproc",
                      fastpaths=FastPathRegistry(),
                      vectorize=False) as interp_session:
        out_interp = workload.run(interp_session, inputs,
                                  interp_session.devices)
    with HaoCLSession(gpu_nodes=2, mode="real", transport="inproc",
                      fastpaths=FastPathRegistry()) as vec_session:
        out_vec = workload.run(vec_session, inputs, vec_session.devices)
    with HaoCLSession(gpu_nodes=2, mode="real",
                      transport="inproc") as fast_session:
        out_fast = workload.run(fast_session, inputs, fast_session.devices)
    assert workload.validate(out_interp, expected), "%s interpreter" % name
    assert workload.validate(out_vec, expected), "%s vectorized" % name
    assert workload.validate(out_fast, expected), "%s fastpath" % name


class TestSpMVHetero:
    def test_stage_partitioned_hetero_run(self, cluster):
        workload = get_workload("spmv")
        inputs = workload.generate(150, seed=2)
        y = workload.run_hetero(
            cluster, inputs,
            cluster.devices_of("GPU"), cluster.devices_of("FPGA"),
        )
        assert workload.validate(y, workload.reference(inputs))


class TestSyntheticRuns:
    @pytest.mark.parametrize("name", sorted(SMALL_SCALES))
    def test_synthetic_breakdown_structure(self, name):
        workload = get_workload(name)
        with HaoCLSession(gpu_nodes=2, mode="modeled",
                          transport="sim") as session:
            breakdown = workload.run_synthetic(session, 50_000,
                                               session.devices)
        for key in ("create", "transfer", "compute", "total"):
            assert key in breakdown
            assert breakdown[key] >= 0
        assert breakdown["total"] >= breakdown["compute"]

    def test_matrixmul_scaling_shape(self):
        workload = get_workload("matrixmul")

        def total(nodes):
            with HaoCLSession(gpu_nodes=nodes, mode="modeled",
                              transport="sim") as session:
                return workload.run_synthetic(session, 2500,
                                              session.devices)["total"]

        assert total(4) < total(1)

    def test_tiled_matmul_kernel_with_barriers(self, cluster):
        """The __local tiled variant must agree with the naive kernel."""
        workload = get_workload("matrixmul")
        n = 16
        inputs = workload.generate(n, seed=5)
        ctx = cluster.context(cluster.devices[:1])
        prog = cluster.program(ctx, workload.source, "-DBS=4")
        device = cluster.devices[0]
        queue = cluster.queue(ctx, device)
        buf_a = cluster.buffer_from(ctx, inputs["A"])
        buf_b = cluster.buffer_from(ctx, inputs["B"])
        buf_c = cluster.empty_buffer(ctx, n * n * 4)
        kernel = cluster.kernel(prog, "matmul_tiled", buf_a, buf_b, buf_c,
                                np.int32(n))
        cluster.enqueue(queue, kernel, (n, n), (4, 4))
        out = cluster.read_array(queue, buf_c, np.float32, (n, n))
        assert np.allclose(out, inputs["A"] @ inputs["B"], atol=1e-3)
