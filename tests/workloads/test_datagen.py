"""Tests for the workload generators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads import datagen


class TestMatrices:
    def test_shape_and_dtype(self):
        m = datagen.random_matrix(10, seed=1)
        assert m.shape == (10, 10)
        assert m.dtype == np.float32

    def test_seeded_determinism(self):
        assert np.array_equal(datagen.random_matrix(8, 3),
                              datagen.random_matrix(8, 3))

    def test_different_seeds_differ(self):
        assert not np.array_equal(datagen.random_matrix(8, 1),
                                  datagen.random_matrix(8, 2))

    def test_value_range(self):
        m = datagen.random_matrix(50)
        assert m.min() >= -1.0
        assert m.max() < 1.0


class TestGraphs:
    def test_rmat_csr_invariants(self):
        row_offsets, columns = datagen.rmat_graph(100, 500, seed=0)
        assert row_offsets[0] == 0
        assert row_offsets[-1] == 500
        assert (np.diff(row_offsets) >= 0).all()
        assert columns.min() >= 0
        assert columns.max() < 100

    def test_rmat_is_skewed(self):
        row_offsets, _ = datagen.rmat_graph(1000, 20_000, seed=1)
        degrees = np.diff(row_offsets)
        # power-law-ish: the busiest vertex far exceeds the mean
        assert degrees.max() > 4 * degrees.mean()

    def test_uniform_graph_fixed_degree(self):
        row_offsets, columns = datagen.uniform_graph(50, 4, seed=0)
        assert (np.diff(row_offsets) == 4).all()
        assert len(columns) == 200

    @given(st.integers(2, 200), st.integers(1, 400))
    @settings(max_examples=30, deadline=None)
    def test_rmat_offsets_always_consistent(self, nverts, nedges):
        row_offsets, columns = datagen.rmat_graph(nverts, nedges, seed=5)
        assert len(row_offsets) == nverts + 1
        assert len(columns) == nedges
        assert row_offsets[-1] == nedges


class TestSparseMatrices:
    def test_banded_csr_invariants(self):
        row_ptr, cols, vals = datagen.banded_csr(100, 8, seed=0)
        assert row_ptr[-1] == 800
        assert len(cols) == len(vals) == 800
        assert cols.min() >= 0
        assert cols.max() < 100

    def test_columns_sorted_within_rows(self):
        row_ptr, cols, _ = datagen.banded_csr(50, 6, seed=2)
        for i in range(50):
            row = cols[row_ptr[i] : row_ptr[i + 1]]
            assert (np.diff(row) >= 0).all()

    def test_band_limit(self):
        row_ptr, cols, _ = datagen.banded_csr(1000, 4, seed=0, bandwidth=10)
        rows = np.repeat(np.arange(1000), 4)
        assert (np.abs(cols - rows) <= 10).all()


class TestMesh:
    def test_mesh_shapes(self):
        neighbors, normals, areas = datagen.unstructured_mesh(64, 4, seed=0)
        assert neighbors.shape == (64, 4)
        assert normals.shape == (64, 4, 3)
        assert areas.shape == (64,)

    def test_no_self_loops(self):
        neighbors, _, _ = datagen.unstructured_mesh(128, 4, seed=1)
        own = np.arange(128)[:, None]
        valid = neighbors >= 0
        assert not (neighbors[valid] == np.broadcast_to(own, neighbors.shape)[valid]).any()

    def test_boundaries_marked(self):
        neighbors, _, _ = datagen.unstructured_mesh(
            500, 4, seed=2, boundary_fraction=0.3
        )
        fraction = (neighbors == -1).mean()
        assert 0.2 < fraction < 0.4

    def test_areas_positive(self):
        _, _, areas = datagen.unstructured_mesh(100, 4, seed=0)
        assert (areas > 0).all()

    def test_initial_variables_physical(self):
        variables = datagen.initial_cfd_variables(100, seed=0).reshape(100, 5)
        assert (variables[:, 0] > 0).all()  # density
        kinetic = 0.5 * (variables[:, 1:4] ** 2).sum(axis=1) / variables[:, 0]
        pressure = 0.4 * (variables[:, 4] - kinetic)
        assert (pressure > 0).all()
