"""Differential suite over the execution tiers.

Every shipped kernel (workloads/kernels/*.cl) runs on small inputs
through the interpreter, the vectorized compiler and -- where one is
registered -- the NumPy fast path, and the output buffers must agree:
bit-identical between interpreter and vectorizer (same lane semantics),
tolerance-bounded against fast paths (different float summation order).

Also asserts the tier *dispatch* behaves: non-vectorizable kernels
(barriers/__local, cross-lane read-write) reject at compile time and the
runtime falls back to the interpreter.
"""

import numpy as np
import pytest

from repro.clc import compile_program
from repro.clc.interp import Interpreter, LocalMem
from repro.clc.values import Memory
from repro.clc.vectorize import VectorizeError, vectorize_kernel
from repro.ocl import enums
from repro.ocl.fastpath import global_fastpaths
from repro.ocl.runtime import CLRuntime, Device
from repro.ocl.device import model_by_name
from repro.workloads import get_workload

RNG_SEED = 1234

#: expected vectorizability of every kernel shipped under
#: workloads/kernels/ -- the fallback cases are as load-bearing as the
#: vectorized ones
VECTORIZABLE = {
    "matrixmul": {"matmul": True, "matmul_tiled": False},
    "knn": {"knn_dist": True, "knn_dist_batch": True, "knn_select": True},
    "spmv": {"spmv_row_lengths": True, "spmv_csr": True},
    "cfd": {"cfd_step_factor": True, "cfd_compute_flux": True,
            "cfd_time_step": True},
    "bfs": {"bfs_expand": False},
}


def _setup(workload_name):
    return compile_program(get_workload(workload_name).source)


def _launches(workload_name):
    """(kernel, args factory, global size, output slots) per kernel.

    The factory returns fresh twin-able argument lists; ``outputs`` are
    the indices of buffers the kernel writes."""
    rng = np.random.default_rng(RNG_SEED)
    if workload_name == "matrixmul":
        n = 16
        a = rng.random((n, n), dtype=np.float32)
        b = rng.random((n, n), dtype=np.float32)

        def matmul_args():
            return [Memory(data=a.copy()), Memory(data=b.copy()),
                    Memory(n * n * 4), np.int32(n), np.int32(n)]

        def tiled_args():
            return [Memory(data=a.copy()), Memory(data=b.copy()),
                    Memory(n * n * 4), np.int32(n)]

        return [
            ("matmul", matmul_args, (n, n), None, [2]),
            ("matmul_tiled", tiled_args, (n, n), (8, 8), [2]),
        ]
    if workload_name == "knn":
        npoints, dim, k, nq = 40, 6, 5, 3
        pts = rng.random((npoints, dim), dtype=np.float32)
        qs = rng.random((nq, dim), dtype=np.float32)
        dmat = rng.random((nq, npoints), dtype=np.float32)

        def dist_args():
            return [Memory(data=pts.copy()), Memory(data=qs[0].copy()),
                    Memory(npoints * 4), np.int32(npoints), np.int32(dim)]

        def batch_args():
            return [Memory(data=pts.copy()), Memory(data=qs.copy()),
                    Memory(nq * npoints * 4), np.int32(npoints),
                    np.int32(dim), np.int32(nq)]

        def select_args():
            return [Memory(data=dmat.copy()), Memory(nq * k * 4),
                    Memory(nq * k * 4), np.int32(npoints), np.int32(k)]

        return [
            ("knn_dist", dist_args, (npoints,), None, [2]),
            ("knn_dist_batch", batch_args, (npoints, nq), None, [2]),
            ("knn_select", select_args, (nq,), None, [1, 2]),
        ]
    if workload_name == "spmv":
        nrows, nnz = 24, 96
        row_ptr = np.linspace(0, nnz, nrows + 1).astype(np.int32)
        cols = rng.integers(0, nrows, nnz).astype(np.int32)
        vals = rng.random(nnz, dtype=np.float32)
        x = rng.random(nrows, dtype=np.float32)

        def lengths_args():
            return [Memory(data=row_ptr.copy()), Memory(nrows * 4),
                    np.int32(nrows)]

        def csr_args():
            return [Memory(data=row_ptr.copy()), Memory(data=cols.copy()),
                    Memory(data=vals.copy()), Memory(data=x.copy()),
                    Memory(nrows * 4), np.int32(nrows)]

        return [
            ("spmv_row_lengths", lengths_args, (nrows,), None, [1]),
            ("spmv_csr", csr_args, (nrows,), None, [4]),
        ]
    if workload_name == "cfd":
        ncells = 20
        # physical state: positive density/energy so pressure stays real
        variables = np.empty(ncells * 5, dtype=np.float32)
        variables[0::5] = rng.random(ncells) + 1.0
        variables[1::5] = rng.random(ncells) * 0.2
        variables[2::5] = rng.random(ncells) * 0.2
        variables[3::5] = rng.random(ncells) * 0.2
        variables[4::5] = rng.random(ncells) + 2.0
        areas = (rng.random(ncells) + 0.1).astype(np.float32)
        neighbors = rng.integers(-1, ncells, ncells * 4).astype(np.int32)
        normals = rng.random(ncells * 4 * 3, dtype=np.float32)
        fluxes = rng.random(ncells * 5, dtype=np.float32)
        factors = rng.random(ncells, dtype=np.float32)

        def sf_args():
            return [Memory(data=variables.copy()), Memory(data=areas.copy()),
                    Memory(ncells * 4), np.int32(ncells)]

        def flux_args():
            return [Memory(data=neighbors.copy()), Memory(data=normals.copy()),
                    Memory(data=variables.copy()), Memory(ncells * 5 * 4),
                    np.int32(ncells), np.int32(0)]

        def ts_args():
            return [Memory(data=variables.copy()), Memory(data=fluxes.copy()),
                    Memory(data=factors.copy()), Memory(ncells * 5 * 4),
                    np.int32(ncells), np.int32(0)]

        return [
            ("cfd_step_factor", sf_args, (ncells,), None, [2]),
            ("cfd_compute_flux", flux_args, (ncells,), None, [3]),
            ("cfd_time_step", ts_args, (ncells,), None, [3]),
        ]
    if workload_name == "bfs":
        nverts = 18
        row_offsets = np.linspace(0, 40, nverts + 1).astype(np.int32)
        columns = rng.integers(0, nverts, 40).astype(np.int32)
        frontier = (rng.random(nverts) < 0.4).astype(np.int32)
        levels = np.where(rng.random(nverts) < 0.5, -1, 0).astype(np.int32)

        def bfs_args():
            return [Memory(data=row_offsets.copy()), Memory(data=columns.copy()),
                    Memory(data=frontier.copy()), Memory(nverts * 4),
                    Memory(data=levels.copy()), np.int32(0), np.int32(nverts),
                    np.int32(0)]

        return [("bfs_expand", bfs_args, (nverts,), None, [3, 4])]
    raise AssertionError(workload_name)


ALL_CASES = [
    (wname, kernel)
    for wname in sorted(VECTORIZABLE)
    for kernel in sorted(VECTORIZABLE[wname])
]


@pytest.mark.parametrize("wname,kernel", ALL_CASES)
def test_interpreter_vs_vectorized(wname, kernel):
    """Vectorizable kernels produce bit-identical buffers; the rest
    reject at compile time (the documented fallback contract)."""
    program = _setup(wname)
    spec = [c for c in _launches(wname) if c[0] == kernel]
    assert spec, "no launch spec for %s" % kernel
    _, make_args, gsize, lsize, outputs = spec[0]
    if not VECTORIZABLE[wname][kernel]:
        with pytest.raises(VectorizeError):
            vectorize_kernel(program, kernel)
        return
    plan = vectorize_kernel(program, kernel)
    args_i = make_args()
    args_v = make_args()
    Interpreter(program).run_kernel(kernel, args_i, gsize, lsize)
    plan.launch(args_v, gsize, lsize)
    for index in outputs:
        assert np.array_equal(args_i[index].data, args_v[index].data), (
            "%s.%s buffer %d diverged" % (wname, kernel, index))


def _tier_runtime(fastpaths=None):
    from repro.ocl.fastpath import FastPathRegistry
    from repro.clc.vectorize import VectorizeCache

    device = Device(model_by_name("gpu"), mode="real")
    runtime = CLRuntime([device], fastpaths=fastpaths or FastPathRegistry(),
                        vectorize_cache=VectorizeCache())
    context = runtime.create_context([device])
    queue = runtime.create_command_queue(context, device)
    return runtime, context, queue


def _launch_via_runtime(runtime, context, queue, wname, kernel_name,
                        make_args, gsize, lsize):
    program = runtime.build_program(
        runtime.create_program_with_source(
            context, get_workload(wname).source),
        "-DBS=8" if wname == "matrixmul" else "",
    )
    kernel = runtime.create_kernel(program, kernel_name)
    args = make_args()
    handles = []
    for index, value in enumerate(args):
        if isinstance(value, Memory):
            buf = runtime.create_buffer(
                context, enums.CL_MEM_READ_WRITE, value.nbytes,
                host_data=value.data,
            )
            handles.append((index, buf))
            kernel.set_arg(index, buf)
        else:
            kernel.set_arg(index, value)
    event = runtime.enqueue_nd_range_kernel(queue, kernel, gsize, lsize)
    return event, args, handles


@pytest.mark.parametrize("wname,kernel", ALL_CASES)
def test_tier_vs_fastpath(wname, kernel):
    """Three-way: the tier the runtime picks (vectorized for these, or
    interpreter fallback) agrees with the registered fast path within
    float tolerance, and the dispatch lands on the expected tier."""
    spec = [c for c in _launches(wname) if c[0] == kernel]
    _, make_args, gsize, lsize, outputs = spec[0]
    if kernel == "matmul_tiled":
        lsize = (8, 8)

    runtime, context, queue = _tier_runtime()
    event, _args, handles = _launch_via_runtime(
        runtime, context, queue, wname, kernel, make_args, gsize, lsize)
    expected_tier = (
        "vectorized" if VECTORIZABLE[wname][kernel] else "interpreter")
    assert event.tier == expected_tier
    assert runtime.tier_counts[expected_tier] == 1

    fast = global_fastpaths.lookup(kernel)
    if fast is None:
        return  # matmul_tiled and friends: no registered fast path
    rt_fast, ctx_fast, q_fast = _tier_runtime(fastpaths=global_fastpaths)
    event_f, _args_f, handles_f = _launch_via_runtime(
        rt_fast, ctx_fast, q_fast, wname, kernel, make_args, gsize, lsize)
    assert event_f.tier == "fastpath"
    for (index, buf), (_i2, buf_f) in zip(handles, handles_f):
        if index not in outputs:
            continue
        got = buf.read()
        ref = buf_f.read()
        if np.array_equal(got, ref):
            continue  # bit-identical (covers the integer buffers)
        assert np.allclose(got.view(np.float32), ref.view(np.float32),
                           rtol=1e-5, atol=1e-5, equal_nan=True), (
            "%s.%s tier output differs from fast path" % (wname, kernel))


def test_local_mem_argument_falls_back_at_launch():
    """A kernel that *compiles* but is handed a __local argument must
    fall back to the interpreter at launch (no partial stores)."""
    src = """
    __kernel void needs_scratch(__global int* out, __local int* scratch) {
        out[get_global_id(0)] = 1;
    }
    """
    program = compile_program(src)
    with pytest.raises(VectorizeError):
        # __local pointer params are rejected at compile time
        vectorize_kernel(program, "needs_scratch")

    runtime, context, queue = _tier_runtime()
    built = runtime.build_program(
        runtime.create_program_with_source(context, src))
    kernel = runtime.create_kernel(built, "needs_scratch")
    out = runtime.create_buffer(context, enums.CL_MEM_READ_WRITE, 4 * 4)
    kernel.set_arg(0, out)
    kernel.set_arg(1, LocalMem(16))
    event = runtime.enqueue_nd_range_kernel(queue, kernel, (4,), (4,))
    assert event.tier == "interpreter"
    assert out.read().view(np.int32).tolist() == [1, 1, 1, 1]
