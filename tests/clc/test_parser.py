"""Unit tests for the OpenCL C parser."""

import pytest

from repro.clc import ast_nodes as A
from repro.clc import types as T
from repro.clc.errors import ParseError
from repro.clc.parser import parse


def first_func(text):
    unit = parse(text)
    for decl in unit.decls:
        if isinstance(decl, A.FunctionDef):
            return decl
    raise AssertionError("no function parsed")


def body_stmts(text):
    return first_func(text).body.stmts


class TestFunctions:
    def test_kernel_flag(self):
        fn = first_func("__kernel void k(__global float* a) {}")
        assert fn.is_kernel
        assert fn.name == "k"

    def test_plain_function_not_kernel(self):
        fn = first_func("int add(int a, int b) { return a + b; }")
        assert not fn.is_kernel
        assert fn.return_type == T.INT

    def test_param_types(self):
        fn = first_func("__kernel void k(__global float* a, int n) {}")
        ptr, scalar = fn.params
        assert ptr.ctype.is_pointer()
        assert ptr.ctype.address_space == T.AS_GLOBAL
        assert ptr.ctype.pointee == T.FLOAT
        assert scalar.ctype == T.INT

    def test_const_qualifier_ignored(self):
        fn = first_func("__kernel void k(__global const float* restrict a) {}")
        assert fn.params[0].ctype.pointee == T.FLOAT

    def test_void_param_list(self):
        fn = first_func("int f(void) { return 1; }")
        assert fn.params[0].ctype.is_void()

    def test_prototype_then_definition(self):
        unit = parse("int f(int a);\nint f(int a) { return a; }")
        defs = [d for d in unit.decls if isinstance(d, A.FunctionDef)]
        assert len(defs) == 2
        assert defs[0].body is None
        assert defs[1].body is not None

    def test_reqd_work_group_size_attribute(self):
        fn = first_func(
            "__kernel __attribute__((reqd_work_group_size(8, 8, 1)))"
            " void k(__global float* a) {}"
        )
        assert fn.attributes["reqd_work_group_size"] == (8, 8, 1)

    def test_unsigned_int_param(self):
        fn = first_func("void f(unsigned int x) {}")
        assert fn.params[0].ctype == T.UINT

    def test_vector_param(self):
        fn = first_func("void f(float4 v) {}")
        assert fn.params[0].ctype == T.vector_type(T.FLOAT, 4)


class TestDeclarations:
    def test_simple_decl(self):
        (stmt,) = body_stmts("void f() { int x = 3; }")
        assert isinstance(stmt, A.DeclStmt)
        var = stmt.decls[0]
        assert var.name == "x"
        assert var.ctype == T.INT
        assert isinstance(var.init, A.IntLit)

    def test_multi_declarator(self):
        (stmt,) = body_stmts("void f() { int a = 1, b = 2, c; }")
        assert [v.name for v in stmt.decls] == ["a", "b", "c"]

    def test_array_decl(self):
        (stmt,) = body_stmts("void f() { float buf[8]; }")
        ctype = stmt.decls[0].ctype
        assert ctype.is_array()
        assert ctype.length == 8

    def test_2d_array_decl(self):
        (stmt,) = body_stmts("void f() { float t[4][8]; }")
        ctype = stmt.decls[0].ctype
        assert ctype.length == 4
        assert ctype.element.length == 8
        assert ctype.element.element == T.FLOAT

    def test_array_dim_constant_expression(self):
        (stmt,) = body_stmts("void f() { float t[4 * 2]; }")
        assert stmt.decls[0].ctype.length == 8

    def test_local_address_space(self):
        (stmt,) = body_stmts("__kernel void f() { __local float t[4]; }")
        assert stmt.decls[0].address_space == T.AS_LOCAL

    def test_pointer_decl(self):
        (stmt,) = body_stmts("void f(__global float* a) { __global float* p = a; }")
        assert stmt.decls[0].ctype.is_pointer()

    def test_initializer_list(self):
        (stmt,) = body_stmts("void f() { int t[3] = {1, 2, 3}; }")
        assert isinstance(stmt.decls[0].init, A.VectorLit)
        assert len(stmt.decls[0].init.elements) == 3

    def test_non_constant_array_dim_rejected(self):
        with pytest.raises(ParseError):
            parse("void f(int n) { float t[n]; }")


class TestStatements:
    def test_if_else(self):
        (stmt,) = body_stmts("void f(int x) { if (x) x = 1; else x = 2; }")
        assert isinstance(stmt, A.If)
        assert stmt.orelse is not None

    def test_dangling_else_binds_inner(self):
        (stmt,) = body_stmts(
            "void f(int x) { if (x) if (x > 1) x = 1; else x = 2; }"
        )
        assert stmt.orelse is None
        assert isinstance(stmt.then, A.If)
        assert stmt.then.orelse is not None

    def test_for_loop_with_decl(self):
        (stmt,) = body_stmts("void f() { for (int i = 0; i < 4; i++) ; }")
        assert isinstance(stmt, A.For)
        assert isinstance(stmt.init, A.DeclStmt)

    def test_for_with_comma_step(self):
        (stmt,) = body_stmts("void f(int a, int b) { for (;; a++, b--) break; }")
        assert isinstance(stmt.step, A.Call)
        assert stmt.step.name == "__comma__"

    def test_while(self):
        (stmt,) = body_stmts("void f(int x) { while (x) x--; }")
        assert isinstance(stmt, A.While)

    def test_do_while(self):
        (stmt,) = body_stmts("void f(int x) { do { x--; } while (x); }")
        assert isinstance(stmt, A.DoWhile)

    def test_break_continue(self):
        stmts = body_stmts("void f() { for (;;) { break; } for (;;) { continue; } }")
        assert isinstance(stmts[0].body.stmts[0], A.Break)
        assert isinstance(stmts[1].body.stmts[0], A.Continue)

    def test_empty_statement(self):
        (stmt,) = body_stmts("void f() { ; }")
        assert isinstance(stmt, A.Compound)

    def test_return_value(self):
        (stmt,) = body_stmts("int f() { return 3; }")
        assert isinstance(stmt, A.Return)
        assert stmt.value.value == 3

    def test_switch_rejected_cleanly(self):
        with pytest.raises(ParseError):
            parse("void f(int x) { switch (x) {} }")

    def test_struct_rejected_cleanly(self):
        with pytest.raises(ParseError):
            parse("struct S { int a; };")


class TestExpressions:
    def expr(self, text):
        (stmt,) = body_stmts("void f(int a, int b, int c, float x) { %s; }" % text)
        return stmt.expr

    def test_precedence_mul_over_add(self):
        e = self.expr("a + b * c")
        assert e.op == "+"
        assert e.right.op == "*"

    def test_parenthesized(self):
        e = self.expr("(a + b) * c")
        assert e.op == "*"
        assert e.left.op == "+"

    def test_assignment_right_associative(self):
        e = self.expr("a = b = c")
        assert isinstance(e, A.Assign)
        assert isinstance(e.value, A.Assign)

    def test_compound_assignment(self):
        e = self.expr("a += b")
        assert e.op == "+="

    def test_ternary(self):
        e = self.expr("a ? b : c")
        assert isinstance(e, A.Ternary)

    def test_logical_ops_precedence(self):
        e = self.expr("a && b || c")
        assert e.op == "||"

    def test_unary_minus(self):
        e = self.expr("-a * b")
        assert e.op == "*"
        assert isinstance(e.left, A.UnaryOp)

    def test_prefix_and_postfix_increment(self):
        assert isinstance(self.expr("++a"), A.UnaryOp)
        assert isinstance(self.expr("a++"), A.PostfixOp)

    def test_call_with_args(self):
        e = self.expr("max(a, b)")
        assert isinstance(e, A.Call)
        assert len(e.args) == 2

    def test_index_chain(self):
        e = self.expr("a[b][c]")
        assert isinstance(e, A.Index)
        assert isinstance(e.base, A.Index)

    def test_scalar_cast(self):
        e = self.expr("(float)a")
        assert isinstance(e, A.Cast)
        assert e.ctype == T.FLOAT

    def test_vector_constructor(self):
        (stmt,) = body_stmts("void f(float x) { float4 v = (float4)(x, x, x, x); }")
        init = stmt.decls[0].init
        assert isinstance(init, A.VectorLit)
        assert init.ctype == T.vector_type(T.FLOAT, 4)
        assert len(init.elements) == 4

    def test_vector_splat_constructor(self):
        (stmt,) = body_stmts("void f(float x) { float4 v = (float4)(0.0f); }")
        assert len(stmt.decls[0].init.elements) == 1

    def test_member_access(self):
        e = self.expr("x = a")  # warm-up; real check below
        (stmt,) = body_stmts("void f(float4 v) { float y = v.x; }")
        assert isinstance(stmt.decls[0].init, A.Member)

    def test_swizzle(self):
        (stmt,) = body_stmts("void f(float4 v) { float2 y = v.xy; }")
        assert stmt.decls[0].init.name == "xy"

    def test_sizeof_type(self):
        e = self.expr("a = sizeof(float)")
        assert isinstance(e.value, A.SizeOf)
        assert e.value.target_type == T.FLOAT

    def test_address_of_and_deref(self):
        e = self.expr("a = *(&b)")
        assert isinstance(e.value, A.UnaryOp)
        assert e.value.op == "*"

    def test_error_reports_position(self):
        with pytest.raises(ParseError) as err:
            parse("void f() { int x = ; }")
        assert err.value.line == 1
