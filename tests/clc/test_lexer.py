"""Unit tests for the OpenCL C tokeniser."""

import pytest

from repro.clc.errors import LexError
from repro.clc.lexer import (
    EOF,
    FLOAT_LIT,
    IDENT,
    INT_LIT,
    KEYWORD,
    PUNCT,
    tokenize,
)


def kinds(text):
    return [t.kind for t in tokenize(text)[:-1]]


def values(text):
    return [t.value for t in tokenize(text)[:-1]]


class TestBasicTokens:
    def test_empty_input_yields_eof_only(self):
        toks = tokenize("")
        assert len(toks) == 1
        assert toks[0].kind == EOF

    def test_identifiers_and_keywords(self):
        toks = tokenize("float foo _bar x9")
        assert toks[0].kind == KEYWORD
        assert toks[1].kind == IDENT
        assert toks[2].kind == IDENT
        assert toks[3].kind == IDENT

    def test_vector_type_names_are_identifiers(self):
        # float4 is resolved by the parser, not the lexer
        toks = tokenize("float4 v")
        assert toks[0].kind == IDENT
        assert toks[0].value == "float4"

    def test_kernel_qualifier_is_keyword(self):
        assert tokenize("__kernel")[0].kind == KEYWORD

    def test_punctuation_maximal_munch(self):
        assert values("a <<= b >> c >= d") == ["a", "<<=", "b", ">>", "c", ">=", "d"]

    def test_increment_vs_plus(self):
        assert values("a++ + ++b") == ["a", "++", "+", "++", "b"]

    def test_arrow_token(self):
        assert "->" in values("p->x")


class TestNumericLiterals:
    def test_plain_int(self):
        tok = tokenize("42")[0]
        assert tok.kind == INT_LIT
        assert tok.value == (42, "")

    def test_hex_int(self):
        assert tokenize("0xFF")[0].value == (255, "")

    def test_unsigned_suffix(self):
        assert tokenize("7u")[0].value == (7, "u")

    def test_long_suffix(self):
        assert tokenize("7L")[0].value == (7, "l")

    def test_float_with_f_suffix(self):
        tok = tokenize("1.5f")[0]
        assert tok.kind == FLOAT_LIT
        assert tok.value == (1.5, "f")

    def test_float_exponent(self):
        tok = tokenize("2e3")[0]
        assert tok.kind == FLOAT_LIT
        assert tok.value[0] == 2000.0

    def test_float_negative_exponent(self):
        assert tokenize("1.5e-2")[0].value[0] == pytest.approx(0.015)

    def test_leading_dot_float(self):
        tok = tokenize(".5f")[0]
        assert tok.kind == FLOAT_LIT
        assert tok.value[0] == 0.5

    def test_int_then_member_not_float(self):
        # `4.x` should not lex 4.x as a float: but C lexes 4. as float;
        # our subset never writes that, so just check plain ints survive.
        toks = tokenize("v.x")
        assert toks[0].value == "v"
        assert toks[1].value == "."


class TestCommentsAndStrings:
    def test_line_comment_stripped(self):
        assert values("a // comment\n b") == ["a", "b"]

    def test_block_comment_stripped(self):
        assert values("a /* x\n y */ b") == ["a", "b"]

    def test_unterminated_block_comment_raises(self):
        with pytest.raises(LexError):
            tokenize("a /* never closed")

    def test_string_literal(self):
        tok = tokenize('"hi\\n"')[0]
        assert tok.value == "hi\n"

    def test_char_literal_value(self):
        assert tokenize("'A'")[0].value == 65


class TestPositions:
    def test_line_and_column_tracking(self):
        toks = tokenize("a\n  b")
        assert (toks[0].line, toks[0].col) == (1, 1)
        assert (toks[1].line, toks[1].col) == (2, 3)

    def test_error_position(self):
        with pytest.raises(LexError) as err:
            tokenize("a\n  @")
        assert err.value.line == 2

    def test_unexpected_character(self):
        with pytest.raises(LexError):
            tokenize("$")
