"""Unit tests for semantic analysis."""

import pytest

from repro.clc import compile_program
from repro.clc.errors import SemanticError


def compile_ok(src, options=""):
    return compile_program(src, options)


class TestScoping:
    def test_undefined_identifier(self):
        with pytest.raises(SemanticError):
            compile_ok("void f() { x = 1; }")

    def test_redeclaration_same_scope(self):
        with pytest.raises(SemanticError):
            compile_ok("void f() { int x; float x; }")

    def test_shadowing_in_inner_block_allowed(self):
        compile_ok("void f() { int x = 1; { float x = 2.0f; } }")

    def test_for_loop_variable_scoped_to_loop(self):
        with pytest.raises(SemanticError):
            compile_ok("void f() { for (int i = 0; i < 3; i++) ; i = 1; }")

    def test_param_visible_in_body(self):
        compile_ok("int f(int a) { return a; }")

    def test_duplicate_function_definition(self):
        with pytest.raises(SemanticError):
            compile_ok("void f() {} void f() {}")

    def test_prototype_plus_definition_ok(self):
        prog = compile_ok("int f(int a); int f(int a) { return a; }")
        assert "f" in prog.functions


class TestTypeChecking:
    def test_call_arity_checked(self):
        with pytest.raises(SemanticError):
            compile_ok("int f(int a) { return a; } void g() { f(1, 2); }")

    def test_unknown_function(self):
        with pytest.raises(SemanticError):
            compile_ok("void f() { frobnicate(1); }")

    def test_void_function_returning_value(self):
        with pytest.raises(SemanticError):
            compile_ok("void f() { return 3; }")

    def test_nonvoid_function_empty_return(self):
        with pytest.raises(SemanticError):
            compile_ok("int f() { return; }")

    def test_break_outside_loop(self):
        with pytest.raises(SemanticError):
            compile_ok("void f() { break; }")

    def test_assign_to_rvalue(self):
        with pytest.raises(SemanticError):
            compile_ok("void f(int a, int b) { (a + b) = 3; }")

    def test_modulo_on_float_rejected(self):
        with pytest.raises(SemanticError):
            compile_ok("void f(float x) { float y = x % 2.0f; }")

    def test_bitand_on_float_rejected(self):
        with pytest.raises(SemanticError):
            compile_ok("void f(float x) { float y = x & 1; }")

    def test_dereference_non_pointer(self):
        with pytest.raises(SemanticError):
            compile_ok("void f(int a) { int b = *a; }")

    def test_index_non_indexable(self):
        with pytest.raises(SemanticError):
            compile_ok("void f(int a) { int b = a[0]; }")

    def test_builtin_overload_mismatch(self):
        with pytest.raises(SemanticError):
            compile_ok("void f(float x) { float y = dot(x); }")


class TestVectorSemantics:
    def test_swizzle_type(self):
        compile_ok("void f(float4 v) { float2 lo = v.xy; float s = v.w; }")

    def test_swizzle_out_of_range(self):
        with pytest.raises(SemanticError):
            compile_ok("void f(float2 v) { float z = v.z; }")

    def test_bad_component_name(self):
        with pytest.raises(SemanticError):
            compile_ok("void f(float4 v) { float q = v.q; }")

    def test_member_on_scalar_rejected(self):
        with pytest.raises(SemanticError):
            compile_ok("void f(float x) { float y = x.x; }")

    def test_hi_lo_halves(self):
        compile_ok("void f(float4 v) { float2 a = v.lo; float2 b = v.hi; }")

    def test_numeric_swizzle(self):
        compile_ok("void f(float4 v) { float2 a = v.s01; }")

    def test_vector_literal_wrong_lane_count(self):
        with pytest.raises(SemanticError):
            compile_ok("void f(float x) { float4 v = (float4)(x, x); }")

    def test_vector_literal_from_smaller_vectors(self):
        compile_ok("void f(float2 a) { float4 v = (float4)(a, a); }")


class TestKernelMetadata:
    def test_kernel_params_recorded(self):
        prog = compile_ok("__kernel void k(__global float* a, int n) {}")
        info = prog.kernel("k")
        assert [name for name, _ in info.params] == ["a", "n"]

    def test_uses_barrier_flag(self):
        prog = compile_ok(
            "__kernel void k(__global float* a) { barrier(1); }"
        )
        assert prog.kernel("k").uses_barrier

    def test_no_barrier_flag(self):
        prog = compile_ok("__kernel void k(__global float* a) { a[0] = 1.0f; }")
        assert not prog.kernel("k").uses_barrier

    def test_local_mem_bytes_counted(self):
        prog = compile_ok(
            "__kernel void k() { __local float t[16]; __local int c; }"
        )
        assert prog.kernel("k").local_mem_bytes == 16 * 4 + 4

    def test_kernel_listing(self):
        prog = compile_ok(
            "__kernel void a() {} __kernel void b() {} void helper() {}"
        )
        assert prog.kernel_names() == ["a", "b"]
        with pytest.raises(KeyError):
            prog.kernel("helper")

    def test_calls_recorded(self):
        prog = compile_ok(
            "int h(int a) { return a; } __kernel void k() { int x = h(3); }"
        )
        assert "h" in prog.kernel("k").calls
