"""Unit tests for the clc type system."""

import numpy as np
import pytest

from repro.clc import types as T
from repro.clc.errors import SemanticError


class TestScalars:
    def test_sizes(self):
        assert T.CHAR.size == 1
        assert T.SHORT.size == 2
        assert T.INT.size == 4
        assert T.LONG.size == 8
        assert T.FLOAT.size == 4
        assert T.DOUBLE.size == 8

    def test_size_t_is_ulong(self):
        assert T.scalar_type("size_t") is T.ULONG

    def test_numpy_dtypes(self):
        assert T.INT.np_dtype is np.int32
        assert T.FLOAT.np_dtype is np.float32
        assert T.UCHAR.np_dtype is np.uint8

    def test_kind_predicates(self):
        assert T.INT.is_integer()
        assert T.FLOAT.is_float()
        assert not T.FLOAT.is_integer()
        assert T.VOID.is_void()
        assert not T.VOID.is_scalar()

    def test_unknown_scalar_raises(self):
        with pytest.raises(SemanticError):
            T.scalar_type("quaternion")

    def test_equality_by_name(self):
        assert T.INT == T.scalar_type("int")
        assert T.INT != T.UINT


class TestVectors:
    def test_float4_properties(self):
        v = T.vector_type(T.FLOAT, 4)
        assert v.size == 16
        assert v.lanes == 4
        assert v.name == "float4"

    def test_vec3_occupies_vec4_storage(self):
        v = T.vector_type(T.FLOAT, 3)
        assert v.size == 16
        assert v.storage_lanes == 4

    def test_lookup_by_name(self):
        assert T.type_by_name("int8") == T.vector_type(T.INT, 8)
        assert T.type_by_name("uchar16").lanes == 16

    def test_invalid_width(self):
        with pytest.raises(SemanticError):
            T.VectorType(T.FLOAT, 5)

    def test_bool_vector_invalid(self):
        with pytest.raises(SemanticError):
            T.VectorType(T.BOOL, 4)


class TestPointersAndArrays:
    def test_pointer_size(self):
        assert T.PointerType(T.FLOAT).size == 8

    def test_pointer_address_space(self):
        p = T.PointerType(T.FLOAT, T.AS_GLOBAL)
        assert p.address_space == T.AS_GLOBAL

    def test_bad_address_space(self):
        with pytest.raises(SemanticError):
            T.PointerType(T.FLOAT, "texture")

    def test_array_size(self):
        a = T.ArrayType(T.FLOAT, 10)
        assert a.size == 40

    def test_nested_array_size(self):
        a = T.ArrayType(T.ArrayType(T.FLOAT, 4), 4)
        assert a.size == 64

    def test_pointer_equality(self):
        assert T.PointerType(T.FLOAT, T.AS_GLOBAL) == T.PointerType(T.FLOAT, T.AS_GLOBAL)
        assert T.PointerType(T.FLOAT, T.AS_GLOBAL) != T.PointerType(T.FLOAT, T.AS_LOCAL)


class TestConversions:
    def test_integer_promotion(self):
        assert T.promote(T.CHAR) == T.INT
        assert T.promote(T.USHORT) == T.INT
        assert T.promote(T.UINT) == T.UINT

    def test_common_type_int_float(self):
        assert T.common_type(T.INT, T.FLOAT) == T.FLOAT

    def test_common_type_float_double(self):
        assert T.common_type(T.FLOAT, T.DOUBLE) == T.DOUBLE

    def test_common_type_signed_unsigned_same_rank(self):
        assert T.common_type(T.INT, T.UINT) == T.UINT

    def test_common_type_wider_signed_wins(self):
        assert T.common_type(T.LONG, T.UINT) == T.LONG

    def test_common_type_small_ints_promote(self):
        assert T.common_type(T.CHAR, T.CHAR) == T.INT

    def test_vector_scalar_widens(self):
        v4 = T.vector_type(T.FLOAT, 4)
        assert T.common_type(v4, T.INT) == v4

    def test_vector_width_mismatch_raises(self):
        with pytest.raises(SemanticError):
            T.common_type(T.vector_type(T.FLOAT, 4), T.vector_type(T.FLOAT, 2))

    def test_can_convert_scalar_to_vector(self):
        assert T.can_convert(T.FLOAT, T.vector_type(T.FLOAT, 4))

    def test_cannot_convert_vector_widths(self):
        assert not T.can_convert(
            T.vector_type(T.FLOAT, 2), T.vector_type(T.FLOAT, 4)
        )

    def test_pointer_conversion_same_space_only(self):
        g = T.PointerType(T.FLOAT, T.AS_GLOBAL)
        l = T.PointerType(T.FLOAT, T.AS_LOCAL)
        assert T.can_convert(g, T.PointerType(T.INT, T.AS_GLOBAL))
        assert not T.can_convert(g, l)

    def test_int_to_pointer_for_null(self):
        assert T.can_convert(T.INT, T.PointerType(T.FLOAT))
