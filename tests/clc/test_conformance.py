"""Conformance tests: realistic kernel patterns from Rodinia/SHOC-style
code, executed end to end through the compiler + interpreter."""

import numpy as np
import pytest

from repro.clc import compile_program
from repro.clc import types as T
from repro.clc.interp import Interpreter, LocalMem
from repro.clc.values import Memory


def run(src, kernel, args, gsize, lsize=None, options=""):
    prog = compile_program(src, options)
    Interpreter(prog).run_kernel(kernel, args, gsize, lsize)


class TestReductionPatterns:
    def test_tree_reduction_with_local_memory(self):
        src = """
        __kernel void reduce(__global const float* in, __global float* out,
                             __local float* scratch, int n) {
            int gid = get_global_id(0);
            int lid = get_local_id(0);
            scratch[lid] = gid < n ? in[gid] : 0.0f;
            barrier(CLK_LOCAL_MEM_FENCE);
            for (int stride = get_local_size(0) / 2; stride > 0; stride >>= 1) {
                if (lid < stride) scratch[lid] += scratch[lid + stride];
                barrier(CLK_LOCAL_MEM_FENCE);
            }
            if (lid == 0) out[get_group_id(0)] = scratch[0];
        }
        """
        n = 32
        data = np.arange(n, dtype=np.float32)
        mem_in = Memory(data=data)
        mem_out = Memory(4 * 4)
        run(src, "reduce", [mem_in, mem_out, LocalMem(8 * 4), n], (n,), (8,))
        groups = mem_out.typed_view(T.FLOAT)
        assert np.allclose(groups, data.reshape(4, 8).sum(axis=1))

    def test_atomic_histogram(self):
        src = """
        __kernel void hist(__global const int* data, __global int* bins,
                           int n, int nbins) {
            int i = get_global_id(0);
            if (i >= n) return;
            atomic_add(&bins[data[i] % nbins], 1);
        }
        """
        rng = np.random.default_rng(3)
        data = rng.integers(0, 16, size=100).astype(np.int32)
        mem_data = Memory(data=data)
        mem_bins = Memory(16 * 4)
        run(src, "hist", [mem_data, mem_bins, 100, 16], (128,))
        expected = np.bincount(data % 16, minlength=16)
        assert np.array_equal(mem_bins.typed_view(T.INT), expected)


class TestStencilPatterns:
    def test_1d_three_point_stencil(self):
        src = """
        __kernel void stencil(__global const float* in, __global float* out,
                              int n) {
            int i = get_global_id(0);
            if (i <= 0 || i >= n - 1) return;
            out[i] = 0.25f * in[i - 1] + 0.5f * in[i] + 0.25f * in[i + 1];
        }
        """
        n = 20
        data = np.random.default_rng(0).random(n).astype(np.float32)
        mem_in, mem_out = Memory(data=data), Memory(n * 4)
        run(src, "stencil", [mem_in, mem_out, n], (n,))
        out = mem_out.typed_view(T.FLOAT)
        expected = 0.25 * data[:-2] + 0.5 * data[1:-1] + 0.25 * data[2:]
        assert np.allclose(out[1:-1], expected, atol=1e-6)

    def test_2d_transpose(self):
        src = """
        __kernel void transpose(__global const float* in, __global float* out,
                                int rows, int cols) {
            int c = get_global_id(0);
            int r = get_global_id(1);
            if (r < rows && c < cols) out[c * rows + r] = in[r * cols + c];
        }
        """
        a = np.arange(12, dtype=np.float32).reshape(3, 4)
        mem_in, mem_out = Memory(data=a), Memory(a.nbytes)
        run(src, "transpose", [mem_in, mem_out, 3, 4], (4, 3))
        out = mem_out.typed_view(T.FLOAT).reshape(4, 3)
        assert np.array_equal(out, a.T)


class TestMacroHeavyKernels:
    def test_block_size_macro_from_build_options(self):
        src = """
        __kernel void strided(__global int* a, int n) {
            int i = get_global_id(0);
            if (i * BLOCK < n) a[i * BLOCK] = i;
        }
        """
        mem = Memory(16 * 4)
        run(src, "strided", [mem, 16], (4,), options="-DBLOCK=4")
        out = mem.typed_view(T.INT)
        assert out[0] == 0 and out[4] == 1 and out[8] == 2 and out[12] == 3

    def test_function_macro_expansion_in_kernel(self):
        src = """
        #define SQ(x) ((x) * (x))
        #define CLAMP01(v) ((v) < 0.0f ? 0.0f : ((v) > 1.0f ? 1.0f : (v)))
        __kernel void k(__global float* a, int n) {
            int i = get_global_id(0);
            if (i < n) a[i] = CLAMP01(SQ(a[i]));
        }
        """
        data = np.array([-2.0, 0.5, 1.5, 0.9], dtype=np.float32)
        mem = Memory(data=data)
        run(src, "k", [mem, 4], (4,))
        out = mem.typed_view(T.FLOAT)
        assert np.allclose(out, [1.0, 0.25, 1.0, 0.81], atol=1e-6)

    def test_conditional_compilation_paths(self):
        src = """
        __kernel void k(__global int* a) {
        #ifdef FAST_PATH
            a[get_global_id(0)] = 1;
        #else
            a[get_global_id(0)] = 2;
        #endif
        }
        """
        mem = Memory(4)
        run(src, "k", [mem], (1,), options="-DFAST_PATH")
        assert mem.typed_view(T.INT)[0] == 1
        mem2 = Memory(4)
        run(src, "k", [mem2], (1,))
        assert mem2.typed_view(T.INT)[0] == 2


class TestHelperFunctionChains:
    def test_pointer_threading_through_helpers(self):
        src = """
        float load2(__global const float* p, int i) { return p[i] * 2.0f; }
        float combine(__global const float* p, int i, int j) {
            return load2(p, i) + load2(p, j);
        }
        __kernel void k(__global const float* in, __global float* out, int n) {
            int i = get_global_id(0);
            if (i < n - 1) out[i] = combine(in, i, i + 1);
        }
        """
        data = np.array([1, 2, 3, 4], dtype=np.float32)
        mem_in, mem_out = Memory(data=data), Memory(16)
        run(src, "k", [mem_in, mem_out, 4], (4,))
        out = mem_out.typed_view(T.FLOAT)
        assert np.allclose(out[:3], [6, 10, 14])

    def test_vector_helper_roundtrip(self):
        src = """
        float4 axpy4(float a, float4 x, float4 y) { return a * x + y; }
        __kernel void k(__global float* out) {
            float4 x = (float4)(1.0f, 2.0f, 3.0f, 4.0f);
            float4 y = (float4)(10.0f);
            float4 r = axpy4(3.0f, x, y);
            vstore4(r, 0, out);
        }
        """
        mem = Memory(16)
        run(src, "k", [mem], (1,))
        assert np.allclose(mem.typed_view(T.FLOAT), [13, 16, 19, 22])


class TestControlFlowTorture:
    def test_deeply_nested_branches_and_loops(self):
        src = """
        __kernel void k(__global int* out, int n) {
            int acc = 0;
            for (int i = 0; i < n; i++) {
                if (i % 2 == 0) {
                    for (int j = 0; j < i; j++) {
                        if (j == 3) continue;
                        acc += j;
                        if (acc > 50) break;
                    }
                } else {
                    do { acc++; } while (0);
                }
            }
            out[get_global_id(0)] = acc;
        }
        """
        mem = Memory(4)
        run(src, "k", [mem, 10], (1,))

        def reference(n):
            acc = 0
            for i in range(n):
                if i % 2 == 0:
                    for j in range(i):
                        if j == 3:
                            continue
                        acc += j
                        if acc > 50:
                            break
                else:
                    acc += 1
            return acc

        assert mem.typed_view(T.INT)[0] == reference(10)

    def test_early_return_per_workitem(self):
        src = """
        __kernel void k(__global int* out, int n) {
            int i = get_global_id(0);
            if (i >= n) return;
            if (i % 3 == 0) { out[i] = -1; return; }
            out[i] = i;
        }
        """
        mem = Memory(8 * 4)
        run(src, "k", [mem, 6], (8,))
        out = mem.typed_view(T.INT)
        assert out[:6].tolist() == [-1, 1, 2, -1, 4, 5]
        assert out[6] == 0 and out[7] == 0  # untouched past n
