"""Unit tests for the vectorizing CLC -> NumPy compiler.

Every behavioural test executes the same kernel through the interpreter
and through :func:`vectorize_kernel` and compares the output buffers
bit-for-bit (lane order equals work-item order, so even races resolve
identically)."""

import numpy as np
import pytest

from repro.clc import compile_program
from repro.clc import types as T
from repro.clc.errors import InterpError
from repro.clc.interp import Interpreter
from repro.clc.values import Memory
from repro.clc.vectorize import (
    VectorizeCache,
    VectorizeError,
    VectorizeFallback,
    vectorize_kernel,
)


def run_both(source, kernel, make_args, global_size, local_size=None,
             global_offset=None, options=""):
    """Execute via interpreter and vectorizer on twin buffer sets;
    returns the two argument lists for the caller to compare."""
    program = compile_program(source, options)
    plan = vectorize_kernel(program, kernel)
    args_i = make_args()
    args_v = make_args()
    Interpreter(program).run_kernel(kernel, args_i, global_size, local_size,
                                    global_offset)
    plan.launch(args_v, global_size, local_size, global_offset)
    return args_i, args_v


def buf_equal(mem_a, mem_b):
    """Bitwise comparison (NaNs compare equal bit-for-bit)."""
    return np.array_equal(mem_a.data, mem_b.data)


class TestElementwise:
    SAXPY = """
    __kernel void saxpy(__global float* y, __global const float* x,
                        float a, int n) {
        int i = get_global_id(0);
        if (i < n) y[i] = y[i] + a * x[i];
    }
    """

    def test_saxpy_matches(self):
        n = 100
        rng = np.random.default_rng(1)
        y0 = rng.random(n, dtype=np.float32)
        x0 = rng.random(n, dtype=np.float32)

        def make():
            return [Memory(data=y0.copy()), Memory(data=x0.copy()),
                    np.float32(1.5), np.int32(n)]

        a, b = run_both(self.SAXPY, "saxpy", make, (n,))
        assert buf_equal(a[0], b[0])

    def test_guard_masks_out_of_range_lanes(self):
        # launch 64 lanes over a 40-element buffer: the guard must keep
        # the masked lanes from ever touching memory
        n = 40

        def make():
            return [Memory(n * 4), Memory(data=np.ones(n, dtype=np.float32)),
                    np.float32(2.0), np.int32(n)]

        a, b = run_both(self.SAXPY, "saxpy", make, (64,))
        assert buf_equal(a[0], b[0])

    def test_global_offset(self):
        src = """
        __kernel void fill(__global int* out) {
            out[get_global_id(0)] = (int)get_global_id(0);
        }
        """

        def make():
            return [Memory(16 * 4)]

        a, b = run_both(src, "fill", make, (8,), global_offset=(4,))
        assert buf_equal(a[0], b[0])
        assert np.asarray(b[0].typed_view(T.INT))[4:12].tolist() == list(range(4, 12))


class TestControlFlow:
    def test_varying_loop_bounds(self):
        src = """
        __kernel void tri(__global const int* bound, __global int* out, int n) {
            int i = get_global_id(0);
            if (i >= n) return;
            int acc = 0;
            for (int j = 0; j < bound[i]; j++) acc += j;
            out[i] = acc;
        }
        """
        n = 33
        bounds = np.arange(n, dtype=np.int32)

        def make():
            return [Memory(data=bounds.copy()), Memory(n * 4), np.int32(n)]

        a, b = run_both(src, "tri", make, (n,))
        assert buf_equal(a[1], b[1])

    def test_break_and_continue(self):
        src = """
        __kernel void bc(__global const int* x, __global int* out, int n) {
            int i = get_global_id(0);
            if (i >= n) return;
            int acc = 0;
            for (int j = 0; j < 20; j++) {
                if (x[(i + j) % n] == 0) continue;
                if (acc > 40) break;
                acc += x[(i + j) % n];
            }
            out[i] = acc;
        }
        """
        n = 17
        rng = np.random.default_rng(3)
        x = rng.integers(0, 8, n).astype(np.int32)

        def make():
            return [Memory(data=x.copy()), Memory(n * 4), np.int32(n)]

        a, b = run_both(src, "bc", make, (n,))
        assert buf_equal(a[1], b[1])

    def test_while_and_do_while(self):
        src = """
        __kernel void wl(__global int* out, int n) {
            int i = get_global_id(0);
            if (i >= n) return;
            int v = i;
            while (v > 3) v = v / 2;
            int c = 0;
            do { c++; } while (c < i);
            out[i] = v * 100 + c;
        }
        """
        n = 25

        def make():
            return [Memory(n * 4), np.int32(n)]

        a, b = run_both(src, "wl", make, (n,))
        assert buf_equal(a[0], b[0])

    def test_mid_kernel_return_divergence(self):
        src = """
        __kernel void ret(__global int* out, int n) {
            int i = get_global_id(0);
            if (i >= n) return;
            out[i] = 1;
            if (i % 3 == 0) return;
            out[i] = 2;
            if (i % 3 == 1) return;
            out[i] = 3;
        }
        """
        n = 20

        def make():
            return [Memory(n * 4), np.int32(n)]

        a, b = run_both(src, "ret", make, (n,))
        assert buf_equal(a[0], b[0])

    def test_ternary_and_logical_short_circuit(self):
        # the && guard protects the x[i] load for out-of-range lanes;
        # the vectorizer must evaluate it only in surviving lanes
        src = """
        __kernel void tl(__global const float* x, __global float* out, int n) {
            int i = get_global_id(0);
            if (i < n && x[i] > 0.5f) out[i] = x[i] > 0.75f ? 2.0f : 1.0f;
            else if (i < n) out[i] = 0.0f;
        }
        """
        n = 50
        rng = np.random.default_rng(5)
        x = rng.random(n, dtype=np.float32)

        def make():
            return [Memory(data=x.copy()), Memory(n * 4), np.int32(n)]

        a, b = run_both(src, "tl", make, (64,))
        assert buf_equal(a[1], b[1])

    def test_raw_global_id_index_arithmetic(self):
        # get_global_id() is uint64; adding a signed literal promotes to
        # float64 under NumPy 2 -- indexing must truncate back to int
        # exactly like the interpreter's per-element int() coercion
        src = """
        __kernel void shiftread(__global const float* x, __global float* out,
                                int n) {
            int i = get_global_id(0);
            if (i >= n - 1) return;
            out[i] = x[get_global_id(0) + 1];
        }
        """
        n = 20
        x = np.arange(n, dtype=np.float32)

        def make():
            return [Memory(data=x.copy()), Memory(n * 4), np.int32(n)]

        a, b = run_both(src, "shiftread", make, (n,))
        assert buf_equal(a[1], b[1])

    def test_long_division_exact_past_float53(self):
        # 64-bit division must not detour through float64: operands past
        # 2^53 would silently round
        src = """
        __kernel void div64(__global const long* a, __global const long* b,
                            __global long* q, __global long* r, int n) {
            int i = get_global_id(0);
            if (i >= n) return;
            q[i] = a[i] / b[i];
            r[i] = a[i] % b[i];
        }
        """
        a = np.array([(1 << 62) + 12345, -((1 << 62) + 12345), 7, -7,
                      (1 << 60) + 1, -1], dtype=np.int64)
        b = np.array([3, 3, -3, -3, (1 << 31) + 7, 2], dtype=np.int64)
        n = len(a)

        def make():
            return [Memory(data=a.copy()), Memory(data=b.copy()),
                    Memory(n * 8), Memory(n * 8), np.int32(n)]

        ai, av = run_both(src, "div64", make, (n,))
        assert buf_equal(ai[2], av[2])
        assert buf_equal(ai[3], av[3])
        # exact values, not just parity
        q = np.asarray(av[2].typed_view(T.LONG))
        assert q[0] == ((1 << 62) + 12345) // 3

    def test_division_semantics(self):
        src = """
        __kernel void dv(__global const int* x, __global int* q,
                         __global float* f, int n) {
            int i = get_global_id(0);
            if (i >= n) return;
            q[i] = (x[i] - 7) / 3 % 5;
            f[i] = (float)x[i] / 7.0f;
        }
        """
        n = 30
        x = np.arange(-10, -10 + n, dtype=np.int32)

        def make():
            return [Memory(data=x.copy()), Memory(n * 4), Memory(n * 4),
                    np.int32(n)]

        a, b = run_both(src, "dv", make, (n,))
        assert buf_equal(a[1], b[1])
        assert buf_equal(a[2], b[2])


class TestHelpers:
    def test_inlined_helper_function(self):
        src = """
        float weight(float a, float b) {
            if (a > b) return a - b;
            return b - a;
        }
        __kernel void hw(__global const float* x, __global float* out, int n) {
            int i = get_global_id(0);
            if (i >= n) return;
            out[i] = weight(x[i], 0.5f) * 2.0f;
        }
        """
        n = 40
        rng = np.random.default_rng(7)
        x = rng.random(n, dtype=np.float32)

        def make():
            return [Memory(data=x.copy()), Memory(n * 4), np.int32(n)]

        a, b = run_both(src, "hw", make, (n,))
        assert buf_equal(a[1], b[1])

    def test_builtins(self):
        src = """
        __kernel void bi(__global const float* x, __global float* out, int n) {
            int i = get_global_id(0);
            if (i >= n) return;
            float v = x[i];
            out[i] = sqrt(fabs(v)) + fmin(v, 0.25f) + pow(v, 2.0f)
                     + clamp(v, 0.1f, 0.9f) + (float)isnan(v);
        }
        """
        n = 32
        rng = np.random.default_rng(9)
        x = (rng.random(n, dtype=np.float32) - np.float32(0.5)) * np.float32(3)

        def make():
            return [Memory(data=x.copy()), Memory(n * 4), np.int32(n)]

        a, b = run_both(src, "bi", make, (n,))
        assert buf_equal(a[1], b[1])


class TestWorkItemStructure:
    def test_local_and_group_ids(self):
        src = """
        __kernel void ids(__global int* out) {
            int g = (int)get_global_id(0);
            out[g] = (int)(get_group_id(0) * 1000 + get_local_id(0) * 10
                           + get_local_size(0));
        }
        """

        def make():
            return [Memory(24 * 4)]

        a, b = run_both(src, "ids", make, (24,), local_size=(8,))
        assert buf_equal(a[0], b[0])

    def test_2d_range(self):
        src = """
        __kernel void m2(__global int* out, int w) {
            int x = get_global_id(0);
            int y = get_global_id(1);
            out[y * w + x] = y * 100 + x;
        }
        """
        w, h = 6, 4

        def make():
            return [Memory(w * h * 4), np.int32(w)]

        a, b = run_both(src, "m2", make, (w, h))
        assert buf_equal(a[0], b[0])


class TestRaceParity:
    def test_duplicate_store_index_last_writer_wins(self):
        # every lane writes out[0]; the interpreter's last work-item wins
        # and the vectorized scatter must agree
        src = """
        __kernel void dup(__global int* out, int n) {
            int i = get_global_id(0);
            if (i >= n) return;
            out[0] = i * 7;
        }
        """

        def make():
            return [Memory(4), np.int32(13)]

        a, b = run_both(src, "dup", make, (16,))
        assert buf_equal(a[0], b[0])


class TestRejections:
    def _reject(self, source, kernel):
        program = compile_program(source)
        with pytest.raises(VectorizeError):
            vectorize_kernel(program, kernel)

    def test_barrier_rejected(self):
        self._reject(
            """
            __kernel void b(__global int* out) {
                out[get_global_id(0)] = 1;
                barrier(1);
            }
            """, "b")

    def test_local_memory_rejected(self):
        self._reject(
            """
            __kernel void l(__global int* out) {
                __local int tile[16];
                tile[get_local_id(0)] = 1;
                out[get_global_id(0)] = tile[0];
            }
            """, "l")

    def test_atomics_rejected(self):
        self._reject(
            """
            __kernel void a(__global int* counter) {
                atomic_add(counter, 1);
            }
            """, "a")

    def test_vector_types_rejected(self):
        self._reject(
            """
            __kernel void v(__global float4* out) {
                out[get_global_id(0)] = (float4)(1.0f, 2.0f, 3.0f, 4.0f);
            }
            """, "v")

    def test_pointer_local_rejected(self):
        self._reject(
            """
            __kernel void p(__global int* out) {
                __global int* q = out;
                q[get_global_id(0)] = 1;
            }
            """, "p")

    def test_read_write_through_shifted_index_rejected(self):
        # lane i reads element i+1 while lane i+1 writes it: lock-step
        # execution would see stale values, so the compiler must refuse
        self._reject(
            """
            __kernel void shift(__global int* x, int n) {
                int i = get_global_id(0);
                if (i < n - 1) x[i] = x[i + 1];
            }
            """, "shift")

    def test_read_write_data_dependent_index_rejected(self):
        self._reject(
            """
            __kernel void ind(__global int* x, __global const int* map, int n) {
                int i = get_global_id(0);
                if (i < n) x[map[i]] = x[map[i]] + 1;
            }
            """, "ind")

    def test_read_write_own_slot_allowed(self):
        program = compile_program(
            """
            __kernel void ok(__global int* x, int n) {
                int i = get_global_id(0);
                if (i < n) x[i] = x[i] + 1;
            }
            """)
        plan = vectorize_kernel(program, "ok")
        assert "x" in plan.written_params


class TestLaunchFallback:
    def test_aliased_buffers_fall_back_before_any_store(self):
        src = """
        __kernel void copy(__global int* dst, __global const int* srcbuf,
                           int n) {
            int i = get_global_id(0);
            if (i < n) dst[i] = srcbuf[i];
        }
        """
        program = compile_program(src)
        plan = vectorize_kernel(program, "copy")
        mem = Memory(data=np.arange(8, dtype=np.int32))
        snapshot = mem.data.copy()
        with pytest.raises(VectorizeFallback):
            plan.launch([mem, mem, np.int32(8)], (8,))
        assert np.array_equal(mem.data, snapshot)  # nothing was written

    def test_shared_read_only_input_is_fine(self):
        src = """
        __kernel void addz(__global int* dst, __global const int* a,
                           __global const int* b, int n) {
            int i = get_global_id(0);
            if (i < n) dst[i] = a[i] + b[i];
        }
        """
        program = compile_program(src)
        plan = vectorize_kernel(program, "addz")
        shared = Memory(data=np.arange(8, dtype=np.int32))
        dst = Memory(8 * 4)
        plan.launch([dst, shared, shared, np.int32(8)], (8,))
        assert np.asarray(dst.typed_view(T.INT)).tolist() == [
            0, 2, 4, 6, 8, 10, 12, 14]

    def test_out_of_bounds_store_raises(self):
        src = """
        __kernel void oob(__global int* a) { a[9999] = 1; }
        """
        program = compile_program(src)
        plan = vectorize_kernel(program, "oob")
        with pytest.raises(InterpError, match="out-of-bounds"):
            plan.launch([Memory(4)], (1,))


class TestCache:
    SRC = """
    __kernel void k1(__global int* out, int n) {
        int i = get_global_id(0);
        if (i < n) out[i] = i;
    }
    __kernel void k2(__global int* out) {
        out[get_global_id(0)] = 1;
        barrier(1);
    }
    """

    def test_second_lookup_hits_without_recompiling(self):
        cache = VectorizeCache()
        program = compile_program(self.SRC)
        first = cache.get(program, "k1")
        assert first is not None
        assert cache.stats() == {
            "entries": 1, "compiles": 1, "hits": 0, "rejects": 0}
        second = cache.get(program, "k1")
        assert second is first  # memoized artifact, zero recompiles
        assert cache.stats()["compiles"] == 1
        assert cache.stats()["hits"] == 1

    def test_identical_source_shares_entry_across_programs(self):
        cache = VectorizeCache()
        cache.get(compile_program(self.SRC), "k1")
        cache.get(compile_program(self.SRC), "k1")  # a second tenant/node
        stats = cache.stats()
        assert stats["compiles"] == 1 and stats["hits"] == 1

    def test_rejections_are_cached(self):
        cache = VectorizeCache()
        program = compile_program(self.SRC)
        assert cache.get(program, "k2") is None
        assert cache.get(program, "k2") is None
        stats = cache.stats()
        assert stats["rejects"] == 1 and stats["hits"] == 1
        assert cache.rejection(program, "k2") is not None

    def test_build_options_key_separation(self):
        cache = VectorizeCache()
        src = """
        #ifndef W
        #define W 1
        #endif
        __kernel void s(__global int* out) { out[get_global_id(0)] = W; }
        """
        cache.get(compile_program(src), "s")
        cache.get(compile_program(src, "-DW=2"), "s")
        assert cache.stats()["compiles"] == 2

    def test_eviction_bounds_entries(self):
        cache = VectorizeCache(max_entries=2)
        for tag in range(4):
            src = "__kernel void t(__global int* o) { o[get_global_id(0)] = %d; }" % tag
            cache.get(compile_program(src), "t")
        assert len(cache) == 2
