"""Tests for the static kernel cost analyser."""

import pytest

from repro.clc import compile_program
from repro.clc.analysis import DEFAULT_TRIP_COUNT, CostExpr, analyze_kernel


def cost_of(src, kernel="k", args=None, options=""):
    prog = compile_program(src, options)
    return analyze_kernel(prog, kernel).resolve(args or {})


class TestCostExpr:
    def test_constant(self):
        assert CostExpr(5).resolve({}) == 5

    def test_addition(self):
        assert (CostExpr(2) + CostExpr(3)).resolve({}) == 5
        assert (CostExpr(2) + 4).resolve({}) == 6

    def test_scale_by_constant(self):
        assert CostExpr(3).scale(4).resolve({}) == 12

    def test_scale_by_symbol(self):
        expr = CostExpr(2).scale("n")
        assert expr.resolve({"n": 10}) == 20

    def test_scale_by_affine(self):
        expr = CostExpr(2).scale(("affine", 0.25, "n"))
        assert expr.resolve({"n": 16}) == 8

    def test_nested_symbols_multiply(self):
        expr = CostExpr(1).scale("n").scale("m")
        assert expr.resolve({"n": 3, "m": 4}) == 12

    def test_unresolved_symbol_uses_default(self):
        expr = CostExpr(1).scale("n")
        assert expr.resolve({}) == DEFAULT_TRIP_COUNT
        assert expr.resolve({}, default=5) == 5


class TestStraightLine:
    def test_float_ops_counted(self):
        c = cost_of("__kernel void k(__global float* a) { a[0] = a[1] * a[2] + a[3]; }")
        assert c.flops == 2

    def test_int_ops_not_flops(self):
        c = cost_of("__kernel void k(__global int* a) { a[0] = a[1] * a[2] + a[3]; }")
        assert c.flops == 0
        assert c.int_ops >= 2

    def test_global_read_write_bytes(self):
        c = cost_of("__kernel void k(__global float* a) { a[0] = a[1] + a[2]; }")
        assert c.global_read_bytes == 8
        assert c.global_write_bytes == 4

    def test_math_builtin_weights(self):
        c = cost_of("__kernel void k(__global float* a) { a[0] = sqrt(a[1]); }")
        assert c.flops >= 4

    def test_barrier_counted(self):
        c = cost_of("__kernel void k(__global float* a) { barrier(1); barrier(1); }")
        assert c.barriers == 2


class TestLoops:
    def test_constant_trip_count(self):
        c = cost_of(
            "__kernel void k(__global float* a) {"
            " float s = 0.0f;"
            " for (int i = 0; i < 10; i++) s += a[i];"
            " a[0] = s; }"
        )
        assert c.flops == pytest.approx(10)
        assert c.global_read_bytes == pytest.approx(40)

    def test_param_bound_trip_count(self):
        src = (
            "__kernel void k(__global float* a, int n) {"
            " float s = 0.0f;"
            " for (int i = 0; i < n; i++) s += a[i];"
            " a[0] = s; }"
        )
        assert cost_of(src, args={"n": 100}).flops == pytest.approx(100)
        assert cost_of(src, args={"n": 7}).flops == pytest.approx(7)

    def test_param_bound_divided_by_constant(self):
        src = (
            "__kernel void k(__global float* a, int n) {"
            " float s = 0.0f;"
            " for (int i = 0; i < n / 4; i++) s += a[i];"
            " a[0] = s; }"
        )
        assert cost_of(src, args={"n": 32}).flops == pytest.approx(8)

    def test_nested_loops_multiply(self):
        src = (
            "__kernel void k(__global float* a, int n) {"
            " float s = 0.0f;"
            " for (int i = 0; i < n; i++)"
            "   for (int j = 0; j < 8; j++) s += 1.0f;"
            " a[0] = s; }"
        )
        assert cost_of(src, args={"n": 4}).flops == pytest.approx(32)

    def test_stride_two_loop(self):
        src = (
            "__kernel void k(__global float* a, int n) {"
            " float s = 0.0f;"
            " for (int i = 0; i < n; i += 2) s += 1.0f;"
            " a[0] = s; }"
        )
        assert cost_of(src, args={"n": 16}).flops == pytest.approx(8)

    def test_unknown_bound_uses_default(self):
        src = (
            "__kernel void k(__global float* a, __global int* bounds) {"
            " float s = 0.0f;"
            " for (int i = 0; i < bounds[0]; i++) s += 1.0f;"
            " a[0] = s; }"
        )
        assert cost_of(src).flops == pytest.approx(DEFAULT_TRIP_COUNT)

    def test_alias_of_param_resolved(self):
        src = (
            "__kernel void k(__global float* a, int n) {"
            " int count = n;"
            " float s = 0.0f;"
            " for (int i = 0; i < count; i++) s += 1.0f;"
            " a[0] = s; }"
        )
        assert cost_of(src, args={"n": 12}).flops == pytest.approx(12)


class TestBranches:
    def test_if_halves_cost(self):
        src = (
            "__kernel void k(__global float* a, int c) {"
            " if (c) a[0] = a[1] + a[2];"
            " }"
        )
        c = cost_of(src)
        assert c.flops == pytest.approx(0.5)

    def test_if_else_averages(self):
        src = (
            "__kernel void k(__global float* a, int c) {"
            " if (c) a[0] = a[1] + a[2]; else a[0] = a[1] * a[2] * a[3]; }"
        )
        c = cost_of(src)
        assert c.flops == pytest.approx(0.5 * 1 + 0.5 * 2)


class TestComposite:
    MATMUL = """
    #define BS 4
    __kernel void mm(__global const float* A, __global const float* B,
                     __global float* C, int n) {
        __local float As[BS][BS];
        __local float Bs[BS][BS];
        int row = get_global_id(1); int col = get_global_id(0);
        int lr = get_local_id(1); int lc = get_local_id(0);
        float acc = 0.0f;
        for (int t = 0; t < n / BS; t++) {
            As[lr][lc] = A[row * n + t * BS + lc];
            Bs[lr][lc] = B[(t * BS + lr) * n + col];
            barrier(1);
            for (int k = 0; k < BS; k++) acc += As[lr][k] * Bs[k][lc];
            barrier(1);
        }
        C[row * n + col] = acc;
    }
    """

    def test_matmul_flops_scale_linearly_in_n(self):
        prog = compile_program(self.MATMUL)
        cost = analyze_kernel(prog, "mm")
        c16 = cost.resolve({"n": 16})
        c64 = cost.resolve({"n": 64})
        assert c64.flops == pytest.approx(4 * c16.flops)
        # per work-item: 2 flops * BS * (n/BS) = 2n
        assert c16.flops == pytest.approx(2 * 16)

    def test_matmul_arithmetic_intensity(self):
        prog = compile_program(self.MATMUL)
        c = analyze_kernel(prog, "mm").resolve({"n": 64})
        assert c.arithmetic_intensity() > 0.4

    def test_helper_function_cost_inlined(self):
        src = """
        float square(float x) { return x * x; }
        __kernel void k(__global float* a) { a[0] = square(a[1]); }
        """
        c = cost_of(src)
        assert c.flops == pytest.approx(1)
