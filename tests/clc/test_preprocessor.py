"""Unit tests for the kernel preprocessor."""

import pytest

from repro.clc.errors import PreprocessorError
from repro.clc.preprocessor import parse_build_options, preprocess


class TestObjectMacros:
    def test_simple_define(self):
        out = preprocess("#define N 16\nint x = N;")
        assert "int x = 16;" in out

    def test_define_used_twice(self):
        out = preprocess("#define N 4\nN + N")
        assert "4 + 4" in out

    def test_undef(self):
        out = preprocess("#define N 4\n#undef N\nN")
        assert "N" in out.split("\n")[-1]

    def test_no_partial_word_replacement(self):
        out = preprocess("#define N 4\nint NN = N;")
        assert "int NN = 4;" in out

    def test_recursive_macro_does_not_loop(self):
        out = preprocess("#define A A\nA")
        assert "A" in out

    def test_chained_macros(self):
        out = preprocess("#define A B\n#define B 3\nA")
        assert "3" in out.split("\n")[-1]


class TestFunctionMacros:
    def test_basic_expansion(self):
        out = preprocess("#define SQ(x) ((x)*(x))\nSQ(3)")
        assert "((3)*(3))" in out

    def test_two_params(self):
        out = preprocess("#define ADD(a, b) (a + b)\nADD(1, 2)")
        assert "(1 + 2)" in out

    def test_nested_call_argument(self):
        out = preprocess("#define SQ(x) ((x)*(x))\nSQ(f(1, 2))")
        assert "((f(1, 2))*(f(1, 2)))" in out

    def test_wrong_arity_raises(self):
        with pytest.raises(PreprocessorError):
            preprocess("#define ADD(a, b) (a+b)\nADD(1)")

    def test_name_without_call_left_alone(self):
        out = preprocess("#define F(x) x\nint F;")
        assert "int F;" in out


class TestConditionals:
    def test_ifdef_taken(self):
        out = preprocess("#define X 1\n#ifdef X\nyes\n#endif")
        assert "yes" in out

    def test_ifdef_skipped(self):
        out = preprocess("#ifdef X\nno\n#endif\nrest")
        assert "no" not in out
        assert "rest" in out

    def test_ifndef(self):
        out = preprocess("#ifndef X\nyes\n#endif")
        assert "yes" in out

    def test_else_branch(self):
        out = preprocess("#ifdef X\nno\n#else\nyes\n#endif")
        assert "yes" in out
        assert "no" not in out

    def test_if_zero(self):
        out = preprocess("#if 0\nno\n#endif")
        assert "no" not in out

    def test_if_defined_expression(self):
        out = preprocess("#define X 1\n#if defined(X)\nyes\n#endif")
        assert "yes" in out

    def test_nested_conditionals(self):
        src = "#define A 1\n#ifdef A\n#ifdef B\nno\n#else\nyes\n#endif\n#endif"
        out = preprocess(src)
        assert "yes" in out
        assert "no" not in out

    def test_unterminated_if_raises(self):
        with pytest.raises(PreprocessorError):
            preprocess("#ifdef X\nbody")

    def test_stray_endif_raises(self):
        with pytest.raises(PreprocessorError):
            preprocess("#endif")

    def test_defines_inside_inactive_branch_ignored(self):
        out = preprocess("#ifdef X\n#define N 4\n#endif\nN")
        assert "N" in out.split("\n")[-1]


class TestMiscDirectives:
    def test_pragma_ignored(self):
        out = preprocess("#pragma OPENCL EXTENSION cl_khr_fp64 : enable\nint x;")
        assert "int x;" in out

    def test_error_directive_raises_when_active(self):
        with pytest.raises(PreprocessorError):
            preprocess("#error bad config")

    def test_error_directive_skipped_when_inactive(self):
        out = preprocess("#ifdef X\n#error unreachable\n#endif\nok")
        assert "ok" in out

    def test_line_continuation(self):
        out = preprocess("#define LONG 1 + \\\n 2\nLONG")
        assert "1 + 2" in " ".join(out.split())

    def test_line_numbering_preserved(self):
        out = preprocess("#define N 1\nsecond\nthird")
        lines = out.split("\n")
        assert lines[1] == "second"
        assert lines[2] == "third"


class TestBuildOptions:
    def test_dash_d_with_value(self):
        assert parse_build_options("-DBLOCK=16") == {"BLOCK": "16"}

    def test_dash_d_without_value_defaults_to_one(self):
        assert parse_build_options("-DUSE_FAST") == {"USE_FAST": "1"}

    def test_separated_dash_d(self):
        assert parse_build_options("-D N=8") == {"N": "8"}

    def test_unknown_flags_ignored(self):
        assert parse_build_options("-cl-fast-relaxed-math -DN=2") == {"N": "2"}

    def test_empty_options(self):
        assert parse_build_options("") == {}
        assert parse_build_options(None) == {}

    def test_options_feed_preprocessor(self):
        out = preprocess("int x = N;", {"N": "7"})
        assert "int x = 7;" in out
