"""Property-based tests: the interpreter against NumPy-computed ground
truth on randomly generated programs."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clc import compile_program
from repro.clc import types as T
from repro.clc.interp import Interpreter
from repro.clc.values import Memory

_ERRSTATE = {"over": "ignore", "under": "ignore",
             "invalid": "ignore", "divide": "ignore"}


def call(src, fn, *args, options=""):
    return Interpreter(compile_program(src, options)).call_function(fn, args)


# -- random integer expression trees -------------------------------------------

_INT_OPS = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "&": lambda a, b: a & b,
    "|": lambda a, b: a | b,
    "^": lambda a, b: a ^ b,
}


@st.composite
def int_exprs(draw, depth=3):
    """(source text, reference fn over np.int32 a,b,c)."""
    if depth == 0 or draw(st.booleans()):
        choice = draw(st.integers(0, 3))
        if choice == 0:
            value = draw(st.integers(-1000, 1000))
            return str(value) if value >= 0 else "(%d)" % value, \
                (lambda a, b, c, v=value: np.int32(v))
        name = "abc"[choice - 1]
        index = choice - 1
        return name, (lambda a, b, c, i=index: (a, b, c)[i])
    op = draw(st.sampled_from(sorted(_INT_OPS)))
    left_src, left_fn = draw(int_exprs(depth=depth - 1))
    right_src, right_fn = draw(int_exprs(depth=depth - 1))
    fn = _INT_OPS[op]
    return (
        "(%s %s %s)" % (left_src, op, right_src),
        lambda a, b, c, f=fn, lf=left_fn, rf=right_fn: f(lf(a, b, c),
                                                        rf(a, b, c)),
    )


class TestIntegerExpressionEquivalence:
    @given(
        int_exprs(),
        st.integers(-(2**31), 2**31 - 1),
        st.integers(-(2**31), 2**31 - 1),
        st.integers(-(2**31), 2**31 - 1),
    )
    @settings(max_examples=120, deadline=None)
    def test_random_expression_matches_numpy_int32(self, expr, a, b, c):
        src_text, reference = expr
        src = "int f(int a, int b, int c) { return %s; }" % src_text
        with np.errstate(**_ERRSTATE):
            expected = reference(np.int32(a), np.int32(b), np.int32(c))
        result = call(src, "f", a, b, c)
        assert np.int32(result) == np.int32(expected), src_text


class TestArithmeticIdentities:
    @given(st.integers(-(2**31), 2**31 - 1), st.integers(-(2**31), 2**31 - 1))
    @settings(max_examples=100, deadline=None)
    def test_addition_commutes(self, a, b):
        src = "int f(int a, int b) { return a + b; }"
        assert call(src, "f", a, b) == call(src, "f", b, a)

    @given(st.integers(-(2**31), 2**31 - 1))
    @settings(max_examples=100, deadline=None)
    def test_double_negation(self, a):
        src = "int f(int a) { return -(-a); }"
        with np.errstate(**_ERRSTATE):
            assert call(src, "f", a) == np.int32(a) * np.int32(1)

    @given(st.integers(-(2**30), 2**30), st.integers(1, 1000))
    @settings(max_examples=100, deadline=None)
    def test_division_remainder_identity(self, a, b):
        """C guarantees (a/b)*b + a%b == a."""
        src = "int f(int a, int b) { return (a / b) * b + (a % b); }"
        assert call(src, "f", a, b) == np.int32(a)

    @given(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False,
                     width=32))
    @settings(max_examples=100, deadline=None)
    def test_float_roundtrip_through_kernel(self, x):
        src = "float f(float x) { return x; }"
        assert call(src, "f", x) == np.float32(x)

    @given(st.floats(min_value=0.0, max_value=1e6, allow_nan=False,
                     width=32))
    @settings(max_examples=100, deadline=None)
    def test_sqrt_squared(self, x):
        src = "float f(float x) { return sqrt(x) * sqrt(x); }"
        result = float(call(src, "f", x))
        assert result == pytest.approx(float(np.float32(x)), rel=1e-3, abs=1e-5)


class TestLoopProperties:
    @given(st.integers(0, 200))
    @settings(max_examples=60, deadline=None)
    def test_sum_formula(self, n):
        src = """
        int f(int n) {
            int s = 0;
            for (int i = 1; i <= n; i++) s += i;
            return s;
        }
        """
        assert call(src, "f", n) == n * (n + 1) // 2

    @given(st.integers(0, 20))
    @settings(max_examples=40, deadline=None)
    def test_power_of_two_by_shifting(self, n):
        src = "int f(int n) { int v = 1; while (n-- > 0) v <<= 1; return v; }"
        assert call(src, "f", n) == np.int32(1 << n)


class TestKernelBufferProperties:
    ELEMENTWISE = """
    __kernel void combine(__global const float* a, __global const float* b,
                          __global float* c, int n) {
        int i = get_global_id(0);
        if (i < n) c[i] = a[i] * 2.0f - b[i];
    }
    """

    @given(
        st.lists(st.floats(min_value=-100, max_value=100, width=32),
                 min_size=1, max_size=32),
    )
    @settings(max_examples=60, deadline=None)
    def test_elementwise_kernel_matches_numpy(self, values):
        n = len(values)
        a = np.array(values, dtype=np.float32)
        b = a[::-1].copy()
        prog = compile_program(self.ELEMENTWISE)
        ma, mb, mc = Memory(data=a), Memory(data=b), Memory(n * 4)
        Interpreter(prog).run_kernel("combine", [ma, mb, mc, n], (n,))
        out = mc.typed_view(T.FLOAT)[:n]
        assert np.allclose(out, a * 2 - b, rtol=1e-5, atol=1e-5)

    @given(st.integers(1, 6), st.integers(1, 6))
    @settings(max_examples=30, deadline=None)
    def test_group_reverse_is_involution(self, groups, group_size):
        """Applying the local-memory reverse kernel twice restores input."""
        src = """
        __kernel void rev(__global int* d, __local int* tile) {
            int lid = get_local_id(0);
            int n = get_local_size(0);
            tile[lid] = d[get_global_id(0)];
            barrier(CLK_LOCAL_MEM_FENCE);
            d[get_global_id(0)] = tile[n - 1 - lid];
        }
        """
        from repro.clc.interp import LocalMem

        n = groups * group_size
        data = np.arange(n, dtype=np.int32)
        mem = Memory(data=data.copy())
        prog = compile_program(src)
        interp = Interpreter(prog)
        for _ in range(2):
            interp.run_kernel("rev", [mem, LocalMem(group_size * 4)],
                              (n,), (group_size,))
        assert np.array_equal(mem.typed_view(T.INT)[:n], data)

    @given(st.integers(1, 64))
    @settings(max_examples=30, deadline=None)
    def test_atomic_counter_exact(self, items):
        src = "__kernel void count(__global int* c) { atomic_add(c, 1); }"
        mem = Memory(4)
        Interpreter(compile_program(src)).run_kernel("count", [mem], (items,))
        assert mem.typed_view(T.INT)[0] == items
