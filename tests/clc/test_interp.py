"""Interpreter tests: control flow, C semantics, vectors, memory, barriers."""

import numpy as np
import pytest

from repro.clc import compile_program
from repro.clc import types as T
from repro.clc.errors import BarrierDivergenceError, InterpError
from repro.clc.interp import Interpreter, LocalMem
from repro.clc.values import Memory


def run1(src, kernel, args, global_size, local_size=None, options=""):
    prog = compile_program(src, options)
    Interpreter(prog).run_kernel(kernel, args, global_size, local_size)


def call(src, fn, *args, options=""):
    prog = compile_program(src, options)
    return Interpreter(prog).call_function(fn, args)


class TestScalarFunctions:
    def test_arith(self):
        src = "int f(int a, int b) { return a * b + 7; }"
        assert call(src, "f", 6, 7) == 49

    def test_recursion(self):
        src = "int fact(int n) { if (n <= 1) return 1; return n * fact(n - 1); }"
        assert call(src, "fact", 6) == 720

    def test_mutual_calls(self):
        src = """
        int g(int x);
        int f(int x) { if (x <= 0) return 0; return g(x - 1) + 1; }
        int g(int x) { if (x <= 0) return 0; return f(x - 1) + 1; }
        """
        assert call(src, "f", 5) == 5

    def test_while_loop(self):
        src = "int f(int n) { int s = 0; while (n > 0) { s += n; n--; } return s; }"
        assert call(src, "f", 10) == 55

    def test_do_while_runs_once(self):
        src = "int f() { int c = 0; do { c++; } while (0); return c; }"
        assert call(src, "f") == 1

    def test_break_continue(self):
        src = """
        int f() {
            int s = 0;
            for (int i = 0; i < 10; i++) {
                if (i == 3) continue;
                if (i == 6) break;
                s += i;
            }
            return s;
        }
        """
        assert call(src, "f") == 0 + 1 + 2 + 4 + 5

    def test_ternary(self):
        src = "int f(int a, int b) { return a > b ? a : b; }"
        assert call(src, "f", 3, 9) == 9

    def test_nested_loops(self):
        src = """
        int f(int n) {
            int c = 0;
            for (int i = 0; i < n; i++)
                for (int j = 0; j <= i; j++)
                    c++;
            return c;
        }
        """
        assert call(src, "f", 5) == 15

    def test_comma_in_for_step(self):
        src = """
        int f(int n) {
            int a = 0, b = 0;
            for (int i = 0; i < n; i++, a += 2) b = a;
            return b;
        }
        """
        assert call(src, "f", 3) == 4


class TestCSemantics:
    def test_int_division_truncates_toward_zero(self):
        src = "int f(int a, int b) { return a / b; }"
        assert call(src, "f", 7, 2) == 3
        assert call(src, "f", -7, 2) == -3
        assert call(src, "f", 7, -2) == -3

    def test_int_modulo_sign_of_dividend(self):
        src = "int f(int a, int b) { return a % b; }"
        assert call(src, "f", 7, 3) == 1
        assert call(src, "f", -7, 3) == -1

    def test_division_by_zero_raises(self):
        src = "int f(int a) { return a / 0; }"
        with pytest.raises(InterpError):
            call(src, "f", 1)

    def test_int32_wraparound(self):
        src = "int f(int a) { return a + 1; }"
        assert call(src, "f", 2**31 - 1) == -(2**31)

    def test_uint_wraparound(self):
        src = "uint f(uint a) { return a - 1u; }"
        assert int(call(src, "f", 0)) == 2**32 - 1

    def test_unsigned_compare(self):
        src = "int f(uint a, uint b) { return a < b; }"
        assert call(src, "f", 2**31, 1) == 0

    def test_shift_ops(self):
        src = "int f(int a) { return (a << 4) >> 2; }"
        assert call(src, "f", 3) == 12

    def test_bitwise_ops(self):
        src = "int f(int a, int b) { return (a & b) | (a ^ b); }"
        assert call(src, "f", 12, 10) == 12 | 10

    def test_float_truncation_on_int_cast(self):
        src = "int f(float x) { return (int)x; }"
        assert call(src, "f", 2.9) == 2
        assert call(src, "f", -2.9) == -2

    def test_char_cast_wraps(self):
        src = "char f(int x) { return (char)x; }"
        assert int(call(src, "f", 300)) == 300 - 256

    def test_short_circuit_and(self):
        src = "int f(int a) { int d = 0; return (a != 0) && (1 / a > 0); }"
        assert call(src, "f", 0) == 0  # must not divide by zero

    def test_short_circuit_or(self):
        src = "int f(int a) { return (a == 0) || (1 / a > 0); }"
        assert call(src, "f", 0) == 1

    def test_float32_precision(self):
        src = "float f() { return 0.1f + 0.2f; }"
        result = call(src, "f")
        assert result.dtype == np.float32
        assert result == np.float32(0.1) + np.float32(0.2)

    def test_increment_semantics(self):
        src = "int f() { int i = 5; int a = i++; int b = ++i; return a * 100 + b; }"
        assert call(src, "f") == 5 * 100 + 7

    def test_compound_assignment_converts(self):
        src = "int f() { int x = 7; x /= 2; return x; }"
        assert call(src, "f") == 3


class TestVectors:
    def test_constructor_and_components(self):
        src = """
        float f() {
            float4 v = (float4)(1.0f, 2.0f, 3.0f, 4.0f);
            return v.x + v.y * v.z - v.w;
        }
        """
        assert call(src, "f") == pytest.approx(1 + 6 - 4)

    def test_splat(self):
        src = "float f() { float4 v = (float4)(2.5f); return v.x + v.w; }"
        assert call(src, "f") == pytest.approx(5.0)

    def test_swizzle_read(self):
        src = """
        float f() {
            float4 v = (float4)(1.0f, 2.0f, 3.0f, 4.0f);
            float2 hi = v.hi;
            return hi.x * 10.0f + hi.y;
        }
        """
        assert call(src, "f") == pytest.approx(34.0)

    def test_swizzle_write(self):
        src = """
        float f() {
            float4 v = (float4)(0.0f);
            v.xz = (float2)(5.0f, 7.0f);
            return v.x + v.y + v.z + v.w;
        }
        """
        assert call(src, "f") == pytest.approx(12.0)

    def test_vector_arithmetic(self):
        src = """
        float f() {
            float4 a = (float4)(1.0f, 2.0f, 3.0f, 4.0f);
            float4 b = a * a + a;
            return b.w;
        }
        """
        assert call(src, "f") == pytest.approx(20.0)

    def test_vector_scalar_broadcast(self):
        src = """
        float f() {
            float4 a = (float4)(1.0f, 2.0f, 3.0f, 4.0f);
            float4 b = a * 2.0f;
            return b.x + b.w;
        }
        """
        assert call(src, "f") == pytest.approx(10.0)

    def test_dot_and_length(self):
        src = """
        float f() {
            float4 a = (float4)(3.0f, 4.0f, 0.0f, 0.0f);
            return dot(a, a) + length(a);
        }
        """
        assert call(src, "f") == pytest.approx(25 + 5)

    def test_vector_from_two_vec2(self):
        src = """
        float f() {
            float2 a = (float2)(1.0f, 2.0f);
            float4 v = (float4)(a, a);
            return v.z;
        }
        """
        assert call(src, "f") == pytest.approx(1.0)

    def test_vector_index(self):
        src = """
        float f() {
            float4 v = (float4)(9.0f, 8.0f, 7.0f, 6.0f);
            return v[2];
        }
        """
        assert call(src, "f") == pytest.approx(7.0)


class TestMemoryAndPointers:
    def test_global_read_write(self):
        src = """
        __kernel void k(__global int* buf) {
            int i = get_global_id(0);
            buf[i] = buf[i] * 2;
        }
        """
        mem = Memory(data=np.arange(8, dtype=np.int32))
        run1(src, "k", [mem], (8,))
        assert list(mem.typed_view(T.INT)) == [0, 2, 4, 6, 8, 10, 12, 14]

    def test_pointer_arithmetic(self):
        src = """
        __kernel void k(__global int* buf, int n) {
            __global int* p = buf + 1;
            for (int i = 0; i < n - 1; i++) { *p = i; p++; }
        }
        """
        mem = Memory(data=np.full(5, -1, dtype=np.int32))
        run1(src, "k", [mem, 5], (1,))
        assert list(mem.typed_view(T.INT)) == [-1, 0, 1, 2, 3]

    def test_private_array(self):
        src = """
        __kernel void k(__global int* out) {
            int t[4];
            for (int i = 0; i < 4; i++) t[i] = i * i;
            int s = 0;
            for (int i = 0; i < 4; i++) s += t[i];
            out[0] = s;
        }
        """
        mem = Memory(4)
        run1(src, "k", [mem], (1,))
        assert mem.typed_view(T.INT)[0] == 0 + 1 + 4 + 9

    def test_2d_private_array(self):
        src = """
        __kernel void k(__global int* out) {
            int t[2][3];
            for (int i = 0; i < 2; i++)
                for (int j = 0; j < 3; j++)
                    t[i][j] = i * 10 + j;
            out[0] = t[1][2];
        }
        """
        mem = Memory(4)
        run1(src, "k", [mem], (1,))
        assert mem.typed_view(T.INT)[0] == 12

    def test_array_initializer(self):
        src = """
        __kernel void k(__global int* out) {
            int t[3] = {4, 5, 6};
            out[0] = t[0] * 100 + t[1] * 10 + t[2];
        }
        """
        mem = Memory(4)
        run1(src, "k", [mem], (1,))
        assert mem.typed_view(T.INT)[0] == 456

    def test_address_of_local_variable(self):
        src = """
        void bump(__private int* p) { *p = *p + 1; }
        int f(int x) { bump(&x); bump(&x); return x; }
        """
        assert call(src, "f", 5) == 7

    def test_out_of_bounds_read_raises(self):
        src = "__kernel void k(__global int* buf) { int x = buf[100]; }"
        with pytest.raises(InterpError):
            run1(src, "k", [Memory(8)], (1,))

    def test_out_of_bounds_write_raises(self):
        src = "__kernel void k(__global int* buf) { buf[100] = 1; }"
        with pytest.raises(InterpError):
            run1(src, "k", [Memory(8)], (1,))

    def test_null_pointer_dereference_raises(self):
        src = "__kernel void k() { __global int* p = 0; *p = 1; }"
        with pytest.raises(InterpError):
            run1(src, "k", [], (1,))

    def test_vload_vstore(self):
        src = """
        __kernel void k(__global float* buf) {
            float4 v = vload4(0, buf);
            vstore4(v * 2.0f, 1, buf);
        }
        """
        mem = Memory(data=np.arange(8, dtype=np.float32))
        run1(src, "k", [mem], (1,))
        assert list(mem.typed_view(T.FLOAT)[4:]) == [0, 2, 4, 6]


class TestWorkItems:
    def test_global_ids_cover_range_2d(self):
        src = """
        __kernel void k(__global int* out, int w) {
            int x = get_global_id(0);
            int y = get_global_id(1);
            out[y * w + x] = y * w + x;
        }
        """
        mem = Memory(4 * 12)
        run1(src, "k", [mem, 4], (4, 3))
        assert list(mem.typed_view(T.INT)) == list(range(12))

    def test_local_and_group_ids(self):
        src = """
        __kernel void k(__global int* out) {
            int g = get_global_id(0);
            out[g] = get_group_id(0) * 100 + get_local_id(0);
        }
        """
        mem = Memory(4 * 6)
        run1(src, "k", [mem], (6,), (3,))
        assert list(mem.typed_view(T.INT)) == [0, 1, 2, 100, 101, 102]

    def test_sizes_queries(self):
        src = """
        __kernel void k(__global int* out) {
            out[0] = get_global_size(0);
            out[1] = get_local_size(0);
            out[2] = get_num_groups(0);
            out[3] = get_work_dim();
        }
        """
        mem = Memory(16)
        run1(src, "k", [mem], (8,), (4,))
        assert list(mem.typed_view(T.INT)) == [8, 4, 2, 1]

    def test_global_offset(self):
        src = """
        __kernel void k(__global int* out) {
            int i = get_global_id(0) - get_global_offset(0);
            out[i] = get_global_id(0);
        }
        """
        prog = compile_program(src)
        mem = Memory(4 * 4)
        Interpreter(prog).run_kernel("k", [mem], (4,), None, (10,))
        assert list(mem.typed_view(T.INT)) == [10, 11, 12, 13]

    def test_indivisible_local_size_rejected(self):
        src = "__kernel void k() {}"
        with pytest.raises(InterpError):
            run1(src, "k", [], (10,), (3,))

    def test_wrong_arg_count(self):
        src = "__kernel void k(__global int* a) {}"
        with pytest.raises(InterpError):
            run1(src, "k", [], (1,))


class TestBarriers:
    REVERSE = """
    __kernel void rev(__global int* data) {
        __local int tile[8];
        int lid = get_local_id(0);
        int gid = get_global_id(0);
        tile[lid] = data[gid];
        barrier(CLK_LOCAL_MEM_FENCE);
        int n = get_local_size(0);
        data[gid] = tile[n - 1 - lid];
    }
    """

    def test_local_memory_exchange(self):
        mem = Memory(data=np.arange(8, dtype=np.int32))
        run1(self.REVERSE, "rev", [mem], (8,), (8,), options="-DCLK_LOCAL_MEM_FENCE=1")
        assert list(mem.typed_view(T.INT)) == [7, 6, 5, 4, 3, 2, 1, 0]

    def test_groups_are_independent(self):
        mem = Memory(data=np.arange(8, dtype=np.int32))
        run1(self.REVERSE, "rev", [mem], (8,), (4,), options="-DCLK_LOCAL_MEM_FENCE=1")
        assert list(mem.typed_view(T.INT)) == [3, 2, 1, 0, 7, 6, 5, 4]

    def test_barrier_divergence_detected(self):
        src = """
        __kernel void k(__global int* data) {
            if (get_local_id(0) == 0) barrier(1);
        }
        """
        with pytest.raises(BarrierDivergenceError):
            run1(src, "k", [Memory(8)], (2,), (2,))

    def test_local_scalar_shared(self):
        src = """
        __kernel void k(__global int* out) {
            __local int total;
            if (get_local_id(0) == 0) total = 0;
            barrier(1);
            atomic_add(&total, 1);
            barrier(1);
            if (get_local_id(0) == 0) out[get_group_id(0)] = total;
        }
        """
        mem = Memory(8)
        run1(src, "k", [mem], (8,), (4,))
        assert list(mem.typed_view(T.INT)) == [4, 4]

    def test_local_kernel_argument(self):
        src = """
        __kernel void k(__global int* out, __local int* tile) {
            int lid = get_local_id(0);
            tile[lid] = lid * 2;
            barrier(1);
            out[get_global_id(0)] = tile[get_local_size(0) - 1 - lid];
        }
        """
        mem = Memory(16)
        run1(src, "k", [mem, LocalMem(16)], (4,), (4,))
        assert list(mem.typed_view(T.INT)) == [6, 4, 2, 0]


class TestAtomics:
    def test_atomic_add_counts_all_items(self):
        src = """
        __kernel void k(__global int* counter) {
            atomic_add(counter, 1);
        }
        """
        mem = Memory(4)
        run1(src, "k", [mem], (64,))
        assert mem.typed_view(T.INT)[0] == 64

    def test_atomic_returns_old_value(self):
        src = """
        __kernel void k(__global int* c, __global int* olds) {
            int old = atomic_add(c, 1);
            olds[get_global_id(0)] = old;
        }
        """
        c, olds = Memory(4), Memory(4 * 8)
        run1(src, "k", [c, olds], (8,))
        assert sorted(olds.typed_view(T.INT)) == list(range(8))

    def test_atomic_min_max(self):
        src = """
        __kernel void k(__global int* lo, __global int* hi, __global int* vals) {
            int v = vals[get_global_id(0)];
            atomic_min(lo, v);
            atomic_max(hi, v);
        }
        """
        vals = np.array([5, -3, 9, 2], dtype=np.int32)
        lo = Memory(data=np.array([100], dtype=np.int32))
        hi = Memory(data=np.array([-100], dtype=np.int32))
        run1(src, "k", [lo, hi, Memory(data=vals)], (4,))
        assert lo.typed_view(T.INT)[0] == -3
        assert hi.typed_view(T.INT)[0] == 9

    def test_atomic_cmpxchg(self):
        src = """
        __kernel void k(__global int* p) {
            atomic_cmpxchg(p, 0, get_global_id(0) + 1);
        }
        """
        mem = Memory(4)
        run1(src, "k", [mem], (4,))
        assert mem.typed_view(T.INT)[0] == 1  # only the first swap wins


class TestBuiltins:
    def test_sqrt_float32(self):
        src = "float f(float x) { return sqrt(x); }"
        assert call(src, "f", 2.0) == pytest.approx(np.sqrt(np.float32(2)))

    def test_min_max_clamp(self):
        src = "int f(int a) { return clamp(a, 0, 10) + min(a, 2) + max(a, 8); }"
        assert call(src, "f", 5) == 5 + 2 + 8

    def test_fma_mad(self):
        src = "float f(float a) { return mad(a, 2.0f, 1.0f) + fma(a, 3.0f, 0.5f); }"
        assert call(src, "f", 2.0) == pytest.approx(5.0 + 6.5)

    def test_convert_functions(self):
        src = "int f(float x) { return convert_int(x) + (int)convert_uchar(260.0f); }"
        assert call(src, "f", 3.7) == 3 + 4  # uchar wraps 260 -> 4

    def test_as_int_bit_reinterpret(self):
        src = "int f(float x) { return as_int(x); }"
        assert int(call(src, "f", 1.0)) == np.float32(1.0).view(np.int32)

    def test_native_aliases(self):
        src = "float f(float x) { return native_sqrt(x) + half_exp(0.0f); }"
        assert call(src, "f", 4.0) == pytest.approx(3.0)

    def test_sizeof(self):
        src = "int f() { return sizeof(float4) + sizeof(int); }"
        assert call(src, "f") == 16 + 4

    def test_isnan_isinf(self):
        src = "int f(float x) { return isnan(x) * 10 + isinf(x); }"
        assert call(src, "f", float("nan")) == 10
        assert call(src, "f", float("inf")) == 1
        assert call(src, "f", 1.0) == 0

    def test_select_scalar(self):
        src = "int f(int c) { return select(10, 20, c); }"
        assert call(src, "f", 1) == 20
        assert call(src, "f", 0) == 10
