"""Unit and property tests for the runtime value model (Memory/Pointer)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clc import types as T
from repro.clc.errors import InterpError
from repro.clc.values import (
    Memory,
    Pointer,
    convert_value,
    ctype_of_value,
    default_value,
    is_truthy,
)


class TestMemory:
    def test_zero_initialised(self):
        mem = Memory(16)
        assert mem.nbytes == 16
        assert not mem.data.any()

    def test_from_existing_array(self):
        arr = np.array([1.5, 2.5], dtype=np.float32)
        mem = Memory(data=arr)
        assert mem.nbytes == 8
        assert mem.load(4, T.FLOAT) == 2.5

    def test_scalar_roundtrip(self):
        mem = Memory(64)
        mem.store(8, T.INT, np.int32(-42))
        assert mem.load(8, T.INT) == -42

    def test_vector_roundtrip(self):
        mem = Memory(64)
        v4 = T.vector_type(T.FLOAT, 4)
        mem.store(16, v4, np.array([1, 2, 3, 4], dtype=np.float32))
        out = mem.load(16, v4)
        assert list(out) == [1, 2, 3, 4]

    def test_unaligned_access_works(self):
        mem = Memory(64)
        mem.store(3, T.INT, np.int32(7))
        assert mem.load(3, T.INT) == 7

    def test_aliasing_through_types(self):
        mem = Memory(8)
        mem.store(0, T.FLOAT, np.float32(1.0))
        raw = mem.load(0, T.UINT)
        assert raw == np.float32(1.0).view(np.uint32)

    def test_out_of_bounds_load(self):
        with pytest.raises(InterpError):
            Memory(4).load(4, T.INT)

    def test_out_of_bounds_store(self):
        with pytest.raises(InterpError):
            Memory(4).store(2, T.INT, np.int32(1))

    def test_typed_view_is_shared(self):
        mem = Memory(16)
        view = mem.typed_view(T.INT)
        view[0] = 9
        assert mem.load(0, T.INT) == 9

    def test_typed_view_offset_count(self):
        mem = Memory(data=np.arange(8, dtype=np.int32))
        view = mem.typed_view(T.INT, offset=8, count=3)
        assert list(view) == [2, 3, 4]


class TestPointer:
    def test_indexing(self):
        mem = Memory(data=np.arange(8, dtype=np.int32))
        p = Pointer(mem, 0, T.INT)
        assert p.load(3) == 3

    def test_add_advances_by_element_size(self):
        mem = Memory(data=np.arange(8, dtype=np.int32))
        p = Pointer(mem, 0, T.INT).add(2)
        assert p.offset == 8
        assert p.load() == 2

    def test_store(self):
        mem = Memory(16)
        Pointer(mem, 0, T.FLOAT).store(2, np.float32(9.5))
        assert mem.load(8, T.FLOAT) == 9.5

    def test_reinterpret(self):
        mem = Memory(data=np.array([1.0], dtype=np.float32))
        p = Pointer(mem, 0, T.FLOAT).reinterpret(T.UINT)
        assert p.load() == np.float32(1.0).view(np.uint32)


class TestConvertValue:
    def test_float_to_int_truncates(self):
        assert convert_value(2.9, T.INT) == 2
        assert convert_value(-2.9, T.INT) == -2

    def test_int_wrap_to_char(self):
        assert convert_value(300, T.CHAR) == 300 - 256
        assert convert_value(300, T.UCHAR) == 44

    def test_scalar_to_vector_splat(self):
        v = convert_value(3, T.vector_type(T.FLOAT, 4))
        assert list(v) == [3, 3, 3, 3]

    def test_vector_width_mismatch_raises(self):
        with pytest.raises(InterpError):
            convert_value(np.zeros(2, np.float32), T.vector_type(T.FLOAT, 4))

    def test_zero_to_null_pointer(self):
        assert convert_value(0, T.PointerType(T.FLOAT)) is None

    def test_nonzero_int_to_pointer_rejected(self):
        with pytest.raises(InterpError):
            convert_value(7, T.PointerType(T.FLOAT))

    def test_bool_conversion(self):
        assert convert_value(3, T.BOOL) == True  # noqa: E712
        assert convert_value(0.0, T.BOOL) == False  # noqa: E712


class TestInference:
    def test_ctype_of_scalars(self):
        assert ctype_of_value(np.int32(1)) == T.INT
        assert ctype_of_value(np.float32(1)) == T.FLOAT
        assert ctype_of_value(np.uint8(1)) == T.UCHAR
        assert ctype_of_value(True) == T.BOOL
        assert ctype_of_value(5) == T.INT

    def test_ctype_of_vector(self):
        assert ctype_of_value(np.zeros(4, np.float32)) == T.vector_type(T.FLOAT, 4)

    def test_ctype_of_pointer(self):
        p = Pointer(Memory(4), 0, T.INT, T.AS_GLOBAL)
        ct = ctype_of_value(p)
        assert ct.is_pointer()
        assert ct.address_space == T.AS_GLOBAL

    def test_default_values(self):
        assert default_value(T.INT) == 0
        assert default_value(T.PointerType(T.INT)) is None
        assert list(default_value(T.vector_type(T.INT, 2))) == [0, 0]

    def test_truthiness(self):
        assert not is_truthy(None)
        assert not is_truthy(np.int32(0))
        assert is_truthy(np.float32(0.5))
        assert is_truthy(Pointer(Memory(4), 0, T.INT))


_INT_TYPES = [T.CHAR, T.UCHAR, T.SHORT, T.USHORT, T.INT, T.UINT, T.LONG, T.ULONG]


class TestConversionProperties:
    @given(st.integers(min_value=-(2**70), max_value=2**70), st.sampled_from(_INT_TYPES))
    @settings(max_examples=200)
    def test_integer_conversion_matches_c_wraparound(self, value, ctype):
        result = int(convert_value(value, ctype))
        bits = ctype.size * 8
        expected = value & ((1 << bits) - 1)
        if ctype.signed and expected >= 1 << (bits - 1):
            expected -= 1 << bits
        assert result == expected

    @given(st.integers(min_value=-(2**31), max_value=2**31 - 1))
    def test_conversion_roundtrip_within_range(self, value):
        assert int(convert_value(value, T.LONG)) == value

    @given(
        st.floats(allow_nan=False, allow_infinity=False, width=32),
        st.sampled_from([T.FLOAT, T.DOUBLE]),
    )
    def test_float_identity(self, value, ctype):
        out = convert_value(value, ctype)
        assert out == ctype.np_dtype(value)

    @given(st.binary(min_size=8, max_size=64))
    def test_memory_byte_roundtrip(self, blob):
        mem = Memory(len(blob))
        for i, byte in enumerate(blob):
            mem.store(i, T.UCHAR, np.uint8(byte))
        assert bytes(mem.data) == blob

    @given(
        st.lists(st.integers(-(2**31), 2**31 - 1), min_size=1, max_size=16),
        st.integers(0, 15),
    )
    def test_pointer_indexing_matches_numpy(self, values, index):
        index = index % len(values)
        arr = np.array(values, dtype=np.int32)
        p = Pointer(Memory(data=arr), 0, T.INT)
        assert p.load(index) == arr[index]
