"""Tests for the Local and SnuCL-D comparator frameworks."""

import numpy as np
import pytest

from repro.baselines import LocalSession, SnuCLDSession
from repro.ocl.errors import CLError
from repro.workloads import get_workload
from repro.workloads.base import UnsupportedBenchmarkError


class TestLocalSession:
    def test_runs_workload_host_programs_unmodified(self):
        workload = get_workload("matrixmul")
        inputs = workload.generate(20, seed=1)
        session = LocalSession(("gpu",), mode="real")
        outputs = workload.run(session, inputs, session.devices)
        assert workload.validate(outputs, workload.reference(inputs))

    def test_clock_accounts_for_async_kernels(self):
        session = LocalSession(("gpu",), mode="modeled")
        ctx = session.context()
        queue = session.queue(ctx, session.devices[0])
        prog = session.program(
            ctx,
            "__kernel void k(__global float* a, int n) {"
            " int i = get_global_id(0); if (i<n) a[i] = a[i]+1.0f; }",
        )
        buf = session.synthetic_buffer(ctx, 40 << 20)
        kernel = session.kernel(prog, "k", buf, np.int32(10_000_000))
        before = session.now_s()
        session.enqueue(queue, kernel, (10_000_000,))
        # enqueue is asynchronous: host clock does not advance yet
        assert session.now_s() == before
        session.finish(queue)
        assert session.now_s() > before

    def test_blocking_write_advances_clock(self):
        session = LocalSession(("gpu",), mode="modeled")
        ctx = session.context()
        queue = session.queue(ctx, session.devices[0])
        buf = session.synthetic_buffer(ctx, 100 << 20)
        before = session.now_s()
        session.write(queue, buf, nbytes=100 << 20)
        assert session.now_s() > before

    def test_device_type_filtering(self):
        session = LocalSession(("gpu", "fpga"), mode="modeled")
        assert len(session.devices_of("GPU")) == 1
        assert len(session.devices_of("FPGA")) == 1

    def test_stats_energy(self):
        session = LocalSession(("fpga",), mode="modeled")
        ctx = session.context()
        queue = session.queue(ctx, session.devices[0])
        buf = session.synthetic_buffer(ctx, 1 << 20)
        session.write(queue, buf)
        stats = session.stats()["local"]["devices"]
        assert all(entry["energy_j"] >= 0 for entry in stats.values())


class TestSnuCLD:
    def test_runs_supported_workloads_correctly(self):
        workload = get_workload("spmv")
        inputs = workload.generate(80, seed=3)
        with SnuCLDSession(gpu_nodes=2, mode="real",
                           transport="inproc") as session:
            outputs = session.run_workload(workload, inputs, session.devices)
        assert workload.validate(outputs, workload.reference(inputs))

    def test_refuses_cfd(self):
        workload = get_workload("cfd")
        with SnuCLDSession(gpu_nodes=2, mode="real",
                           transport="inproc") as session:
            with pytest.raises(UnsupportedBenchmarkError):
                session.run_workload(workload, workload.generate(30),
                                     session.devices)

    def test_writes_replicate_to_every_node(self):
        with SnuCLDSession(gpu_nodes=3, mode="real",
                           transport="inproc") as session:
            ctx = session.context()
            queue = session.queue(ctx, session.devices[0])
            data = np.ones(1000, dtype=np.float32)
            buf = session.cl.create_buffer(ctx, 0, data.nbytes)
            session.cl.enqueue_write_buffer(queue, buf, data)
            # replication: every node holds a fresh copy immediately
            assert {"gpu0", "gpu1", "gpu2"} <= buf.fresh
            stats = session.stats()["_host"]["transfers"]
            assert stats["bytes_to_nodes"] == 3 * data.nbytes

    def test_replication_slower_than_haocl_at_scale(self):
        from repro.experiments.harness import run_elapsed

        haocl = run_elapsed("matrixmul", "haocl-gpu", nodes=4, scale=1500)
        snucl = run_elapsed("matrixmul", "snucl", nodes=4, scale=1500)
        assert snucl > haocl

    def test_no_pluggable_scheduler(self):
        with SnuCLDSession(gpu_nodes=1, mode="real",
                           transport="inproc") as session:
            with pytest.raises(CLError):
                session.cl.set_policy("hetero-aware")

    def test_policy_pinned_to_user_directed(self):
        with SnuCLDSession(gpu_nodes=1, mode="real",
                           transport="inproc") as session:
            assert session.cl.policy.name == "user-directed"
