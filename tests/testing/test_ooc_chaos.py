"""Chaos acceptance for out-of-core streaming: kill a node mid-stream.

The degraded pipeline must survive the loss of one of its devices with
*per-chunk* replay -- every chunk completes, results stay bit-identical
to the fault-free degraded run, the replay is visible in
``chunk_replays``, and the whole fault schedule is replayable from the
chaos plan's logged seed.
"""

import numpy as np

from repro.core import HaoCLSession
from repro.serve import HaoCLService, Job
from repro.serve.job import DONE
from repro.testing import ChaosPlan
from repro.workloads.base import load_kernel_source

SPMV = load_kernel_source("spmv.cl")

CAPACITY = 1600  # bytes: far below the spmv working set below


def spmv_job(tenant, nrows=256, seed=3):
    rng = np.random.default_rng(seed)
    lengths = rng.integers(1, 5, size=nrows)
    row_ptr = np.zeros(nrows + 1, dtype=np.int32)
    np.cumsum(lengths, out=row_ptr[1:])
    nnz = int(row_ptr[-1])
    cols = rng.integers(0, nrows, size=nnz).astype(np.int32)
    vals = rng.standard_normal(nnz).astype(np.float32)
    x = rng.standard_normal(nrows).astype(np.float32)
    y = np.zeros(nrows, dtype=np.float32)
    return Job(tenant, SPMV, "spmv_csr",
               [row_ptr, cols, vals, x, y, np.int32(nrows)], (nrows,))


def run_stream(chaos=None):
    with HaoCLSession(gpu_nodes=3, mode="real", transport="sim",
                      dmp_capacity_bytes=CAPACITY, chaos=chaos) as session:
        with HaoCLService(session, max_retries=3) as service:
            job = service.submit(spmv_job("alice"))
            service.run()
            stats = service.ooc_stats()
            fault = service.fault_stats()
    return job, stats, fault


def kill_plan(seed=7):
    # the stream alternates chunks between two nodes; killing one of
    # them on its 3rd kernel launch lands mid-pipeline
    return ChaosPlan(seed=seed).kill("gpu1", method="enqueue_ndrange",
                                     occurrence=3)


class TestOOCStreamSurvivesNodeLoss:
    def test_kill_mid_stream_replays_only_the_lost_chunk(self):
        reference, ref_stats, _ = run_stream()
        assert reference.state == DONE
        assert ref_stats["chunk_replays"] == 0

        plan = kill_plan()
        job, stats, fault = run_stream(chaos=plan)

        assert job.state == DONE
        # the fault fired mid-stream and was logged for replay
        kills = [e for e in plan.events if e["fault"] == "kill"]
        assert kills and kills[0]["node"] == "gpu1"
        # the loss cost chunk replays, not a job requeue: every planned
        # chunk completed and the job was charged exactly once
        assert stats["chunk_replays"] >= 1
        assert job.ooc_report["replays"] == stats["chunk_replays"]
        assert job.ooc_report["chunks"] == job.ooc_report["planned"]
        assert job.attempts == stats["chunk_replays"]
        assert fault["jobs_replayed"] == 0  # no full-job retry happened

        # bit-identical to the fault-free degraded run
        assert sorted(job.result) == sorted(reference.result)
        for key in reference.result:
            assert np.array_equal(reference.result[key], job.result[key]), key

    def test_chaos_schedule_replays_from_its_seed(self):
        first_plan = kill_plan(seed=11)
        first_job, first_stats, _ = run_stream(chaos=first_plan)
        second_plan = kill_plan(seed=11)
        second_job, second_stats, _ = run_stream(chaos=second_plan)

        assert first_job.state == DONE and second_job.state == DONE
        # same seed, same schedule: identical fault logs and identical
        # recovery cost
        strip = lambda events: [
            {k: v for k, v in e.items() if k != "time_s"} for e in events
        ]
        assert strip(first_plan.events) == strip(second_plan.events)
        assert first_stats["chunk_replays"] == second_stats["chunk_replays"]
        assert np.array_equal(first_job.result["y"], second_job.result["y"])
