"""Unit tests for the fault-injection harness itself.

The chaos layer is test infrastructure, so its own contract is tested
tightly: rules fire exactly where scripted, dead nodes stay dead, the
event log replays, and the only randomness comes from the plan's seed.
"""

import pytest

from repro.cluster import ClusterConfig, HostProcess
from repro.ocl import enums
from repro.ocl.errors import CLError
from repro.testing import ChaosFabric, ChaosPlan
from repro.transport import Message, NodeLostError, TransportError
from repro.transport.sim import SimFabric


class AckHandler:
    def handle(self, message, now_s):
        return message.reply(ok=True), now_s


def ack_fabric(plan, nodes=("n0", "n1")):
    return plan.wrap(SimFabric({n: AckHandler() for n in nodes}))


def ping(fabric, node_id):
    return fabric.connect(node_id).request(Message.request("ping"))


class TestChaosPlanRules:
    def test_kill_at_message_index(self):
        plan = ChaosPlan()
        plan.kill("n0", index=2)
        fabric = ack_fabric(plan)
        ping(fabric, "n0")  # index 0
        ping(fabric, "n0")  # index 1
        with pytest.raises(NodeLostError) as err:
            ping(fabric, "n0")  # index 2: the kill
        assert err.value.node_id == "n0"
        assert plan.dead == {"n0"}

    def test_kill_on_method_occurrence(self):
        plan = ChaosPlan()
        plan.kill("n0", method="write", occurrence=2)
        fabric = ack_fabric(plan)
        fabric.connect("n0").request(Message.request("write"))  # occ 1
        ping(fabric, "n0")  # different method: not counted
        with pytest.raises(NodeLostError):
            fabric.connect("n0").request(Message.request("write"))  # occ 2

    def test_dead_node_stays_dead(self):
        plan = ChaosPlan()
        plan.kill("n0", index=0)
        fabric = ack_fabric(plan)
        for _ in range(3):
            with pytest.raises(NodeLostError):
                ping(fabric, "n0")

    def test_other_nodes_unaffected(self):
        plan = ChaosPlan()
        plan.kill("n0", index=0)
        fabric = ack_fabric(plan)
        with pytest.raises(NodeLostError):
            ping(fabric, "n0")
        assert ping(fabric, "n1").payload["ok"] is True

    def test_hang_count_then_recovers(self):
        plan = ChaosPlan()
        plan.hang("n0", method="ping", occurrence=1, count=2)
        fabric = ack_fabric(plan)
        with pytest.raises(NodeLostError):
            ping(fabric, "n0")
        # the hang consumed its first occurrence; the rule keeps firing
        # until count is spent, then the node answers again
        with pytest.raises(NodeLostError):
            ping(fabric, "n0")
        assert ping(fabric, "n0").payload["ok"] is True
        assert "n0" not in plan.dead

    def test_blackout_returns_error_frame(self):
        plan = ChaosPlan()
        plan.blackout("n0", methods=("acquire_device",), count=2)
        fabric = ack_fabric(plan)
        for _ in range(2):
            resp = fabric.connect("n0").request(
                Message.request("acquire_device")
            )
            assert resp.is_error
            assert resp.payload["code"] == enums.CL_DEVICE_NOT_AVAILABLE
        # blackout over: the claim goes through again
        resp = fabric.connect("n0").request(Message.request("acquire_device"))
        assert not resp.is_error

    def test_drop_peer_raises_transport_error(self):
        plan = ChaosPlan()
        plan.drop_peer(src="n0", dst="n1", count=1)
        fabric = ack_fabric(plan)
        with pytest.raises(TransportError):
            fabric.peer_request("n0", "n1", Message.request("peer_request"))
        resp, _elapsed = fabric.peer_request(
            "n0", "n1", Message.request("peer_request")
        )
        assert resp.payload["ok"] is True

    def test_delay_peer_inflates_elapsed(self):
        plan = ChaosPlan()
        plan.delay_peer(delay_s=0.5)
        fabric = ack_fabric(plan)
        _resp, slow = fabric.peer_request(
            "n0", "n1", Message.request("peer_request")
        )
        assert slow >= 0.5

    def test_peer_to_dead_node_is_node_lost(self):
        plan = ChaosPlan()
        plan.kill("n1", index=0)
        fabric = ack_fabric(plan)
        with pytest.raises(NodeLostError):
            ping(fabric, "n1")
        with pytest.raises(NodeLostError) as err:
            fabric.peer_request("n0", "n1", Message.request("peer_request"))
        assert err.value.node_id == "n1"


class TestChaosDeterminism:
    def test_kill_random_replays_from_seed(self):
        picks = [
            ChaosPlan(seed=42).kill_random(["a", "b", "c"]) for _ in range(3)
        ]
        assert picks[0] == picks[1] == picks[2]
        other = ChaosPlan(seed=43).kill_random(["a", "b", "c"] * 7)
        assert isinstance(other, tuple)  # may or may not differ; typed

    def test_event_log_records_fired_faults(self):
        plan = ChaosPlan(seed=7)
        plan.kill("n0", method="ping", occurrence=2)
        plan.drop_peer(count=1)
        fabric = ack_fabric(plan)
        ping(fabric, "n0")
        with pytest.raises(TransportError):
            fabric.peer_request("n0", "n1", Message.request("pull"))
        with pytest.raises(NodeLostError):
            ping(fabric, "n0")
        kinds = [event["fault"] for event in plan.events]
        assert kinds == ["drop_peer", "kill"]

    def test_identical_plans_produce_identical_event_logs(self):
        def run(seed):
            plan = ChaosPlan(seed=seed)
            plan.kill_random(["n0", "n1"], method="ping", max_occurrence=2)
            fabric = ack_fabric(plan)
            for node in ("n0", "n1"):
                for _ in range(3):
                    try:
                        ping(fabric, node)
                    except NodeLostError:
                        pass
            return plan.events

        assert run(5) == run(5)


class TestChaosFabricWrapping:
    def test_passthrough_attributes(self):
        plan = ChaosPlan()
        inner = SimFabric({"n0": AckHandler()})
        fabric = plan.wrap(inner)
        assert isinstance(fabric, ChaosFabric)
        assert fabric.netmodel is inner.netmodel
        ping(fabric, "n0")
        assert fabric.now_s() == inner.now_s()
        assert fabric.messages == inner.messages

    def test_rejoin_clears_death(self):
        plan = ChaosPlan()
        plan.kill("n0", index=0)
        fabric = ack_fabric(plan)
        with pytest.raises(NodeLostError):
            ping(fabric, "n0")
        fabric.add_node("n0", AckHandler())
        assert ping(fabric, "n0").payload["ok"] is True

    def test_host_launch_accepts_plan(self):
        plan = ChaosPlan()
        plan.kill("gpu0", method="ping", occurrence=1)
        config = ClusterConfig.build(gpu_nodes=2)
        with HostProcess.launch(config, transport="sim", chaos=plan) as host:
            assert host.call("gpu1", "ping")["node_id"] == "gpu1"
            with pytest.raises(NodeLostError):
                host.call("gpu0", "ping")

    def test_blackout_surfaces_as_clerror_through_host(self):
        plan = ChaosPlan()
        plan.blackout("gpu0", methods=("ping",), count=1)
        config = ClusterConfig.build(gpu_nodes=1)
        with HostProcess.launch(config, transport="sim", chaos=plan) as host:
            with pytest.raises(CLError) as err:
                host.call("gpu0", "ping")
            assert err.value.code == enums.CL_DEVICE_NOT_AVAILABLE
            assert host.call("gpu0", "ping")["node_id"] == "gpu0"
