"""Chaos acceptance for sharded launches: kill a shard owner mid-launch.

A sharded job fans out one sub-launch per owner node.  Killing the node
that owns a *middle* shard while the fan-out is in flight must not lose
or duplicate work: the lost shard is rebuilt on a surviving node from
the job's host-side inputs (digest-tagged, so surviving replicas refill
from the dedup cache), every shard completes, results stay bit-identical
to the fault-free sharded run, the rebuild is visible in
``shard_rebuilds``, the job's fair-share cost is charged exactly once,
and the whole fault schedule replays from the chaos plan's seed.
"""

import numpy as np

from repro.core import HaoCLSession
from repro.serve import HaoCLService, Job
from repro.serve.job import DONE
from repro.testing import ChaosPlan
from repro.workloads.base import load_kernel_source

MATMUL = load_kernel_source("matrixmul.cl")

N = 64
#: per-node residency: holds the replicated B plus one shard of A and C,
#: but nowhere near the whole job -- so admission must shard it
CAPACITY = 32768


def matmul_job(tenant, n=N, seed=5):
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((n, n)).astype(np.float32)
    b = rng.standard_normal((n, n)).astype(np.float32)
    c = np.zeros((n, n), dtype=np.float32)
    return Job(tenant, MATMUL, "matmul",
               [a, b, c, np.int32(n), np.int32(n)], (n, n))


def run_sharded(chaos=None):
    with HaoCLSession(gpu_nodes=3, mode="real", transport="sim",
                      dmp_capacity_bytes=CAPACITY, chaos=chaos) as session:
        with HaoCLService(session, shard=True, max_retries=3) as service:
            job = service.submit(matmul_job("alice"))
            service.run()
            stats = service.shard_stats()
            fault = service.fault_stats()
    return job, stats, fault


def kill_middle_owner(seed=7):
    # block sharding over the admission controller's sorted node list
    # puts a middle shard on gpu1; killing it on its first shard
    # sub-launch lands mid-fan-out
    return ChaosPlan(seed=seed).kill("gpu1", method="enqueue_ndrange",
                                     occurrence=1)


class TestShardedLaunchSurvivesNodeLoss:
    def test_job_shards_at_this_capacity(self):
        probe = matmul_job("alice")
        job, stats, _ = run_sharded()
        assert probe.footprint_bytes > CAPACITY
        assert job.state == DONE
        assert stats["shard_admits"] == 1
        assert job.shard_report["shards"] >= 2
        assert stats["shard_rebuilds"] == 0

    def test_kill_middle_shard_owner_rebuilds_only_that_shard(self):
        reference, ref_stats, _ = run_sharded()
        assert reference.state == DONE
        assert ref_stats["shard_rebuilds"] == 0

        plan = kill_middle_owner()
        job, stats, fault = run_sharded(chaos=plan)

        assert job.state == DONE
        # the fault fired mid-fan-out and was logged for replay
        kills = [e for e in plan.events if e["fault"] == "kill"]
        assert kills and kills[0]["node"] == "gpu1"
        # the loss cost a shard rebuild, not a job requeue: every shard
        # completed and the job was charged exactly once
        assert stats["shard_rebuilds"] >= 1
        assert job.shard_report["rebuilds"] == stats["shard_rebuilds"]
        assert job.shard_report["shards"] == job.shard_report["planned"]
        assert job.attempts == stats["shard_rebuilds"]
        assert fault["jobs_replayed"] == 0  # no full-job retry happened
        assert job.terminal_count == 1
        # the rebuilt shard landed on a surviving node
        assert "gpu1" not in job.shard_report["nodes"]

        # bit-identical to the fault-free sharded run
        assert sorted(job.result) == sorted(reference.result)
        for key in reference.result:
            assert np.array_equal(reference.result[key], job.result[key]), key

    def test_chaos_schedule_replays_from_its_seed(self):
        first_plan = kill_middle_owner(seed=11)
        first_job, first_stats, _ = run_sharded(chaos=first_plan)
        second_plan = kill_middle_owner(seed=11)
        second_job, second_stats, _ = run_sharded(chaos=second_plan)

        assert first_job.state == DONE and second_job.state == DONE
        # same seed, same schedule: identical fault logs and identical
        # recovery cost
        strip = lambda events: [
            {k: v for k, v in e.items() if k != "time_s"} for e in events
        ]
        assert strip(first_plan.events) == strip(second_plan.events)
        assert (first_stats["shard_rebuilds"]
                == second_stats["shard_rebuilds"])
        assert np.array_equal(first_job.result["C"], second_job.result["C"])
