"""Node fault tolerance, end to end.

The acceptance scenario of this layer: kill one node mid-pipeline on
the sim fabric and every job still completes, bit-identical to the
fault-free run, with the recovery visible in the counters and the whole
chaos schedule replayable from its logged seed.
"""

import time

import numpy as np
import pytest

from repro.cluster import ClusterConfig, HostProcess, NodeConfig
from repro.core import HaoCLSession
from repro.serve import HaoCLService, Job
from repro.serve.job import DONE
from repro.testing import ChaosPlan
from repro.transport import NodeLostError
from repro.workloads.base import load_kernel_source

MATMUL = load_kernel_source("matrixmul.cl")
SPMV = load_kernel_source("spmv.cl")
CFD = load_kernel_source("cfd.cl")

SAXPY = """
__kernel void saxpy(__global float* y, __global const float* x,
                    float a, int n) {
    int i = get_global_id(0);
    if (i < n) y[i] = y[i] + a * x[i];
}
"""


def matmul_job(tenant, n=8, seed=0):
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((n, n)).astype(np.float32)
    b = rng.standard_normal((n, n)).astype(np.float32)
    c = np.zeros((n, n), dtype=np.float32)
    return Job(tenant, MATMUL, "matmul",
               [a, b, c, np.int32(n), np.int32(n)], (n, n))


def spmv_job(tenant, nrows=16, seed=0):
    rng = np.random.default_rng(seed)
    lengths = rng.integers(1, 5, size=nrows)
    row_ptr = np.zeros(nrows + 1, dtype=np.int32)
    np.cumsum(lengths, out=row_ptr[1:])
    nnz = int(row_ptr[-1])
    cols = rng.integers(0, nrows, size=nnz).astype(np.int32)
    vals = rng.standard_normal(nnz).astype(np.float32)
    x = rng.standard_normal(nrows).astype(np.float32)
    y = np.zeros(nrows, dtype=np.float32)
    return Job(tenant, SPMV, "spmv_csr",
               [row_ptr, cols, vals, x, y, np.int32(nrows)], (nrows,))


def cfd_job(tenant, ncells=16, seed=0):
    rng = np.random.default_rng(seed)
    # physical state: density ~1, small momenta, energy well above the
    # kinetic term, so pressure (hence the sound speed sqrt) stays > 0
    variables = np.empty((ncells, 5), dtype=np.float32)
    variables[:, 0] = rng.random(ncells) + 1.0
    variables[:, 1:4] = (rng.random((ncells, 3)) - 0.5) * 0.2
    variables[:, 4] = rng.random(ncells) + 10.0
    variables = variables.reshape(-1)
    areas = (rng.random(ncells) + 0.5).astype(np.float32)
    step_factors = np.zeros(ncells, dtype=np.float32)
    return Job(tenant, CFD, "cfd_step_factor",
               [variables, areas, step_factors, np.int32(ncells)], (ncells,))


def run_service(job_factory, chaos=None, gpu_nodes=3, **service_kw):
    """One full serve run on a fresh sim cluster; returns (jobs, fault
    counters)."""
    service_kw.setdefault("max_retries", 3)
    with HaoCLSession(gpu_nodes=gpu_nodes, mode="real", transport="sim",
                      chaos=chaos) as session:
        with HaoCLService(session, **service_kw) as service:
            jobs = [service.submit(job) for job in job_factory()]
            service.run()
            fault = service.fault_stats()
    return jobs, fault


def result_arrays(jobs):
    return [
        {name: array.copy() for name, array in job.result.items()}
        if job.result else None
        for job in jobs
    ]


def assert_bit_identical(expected, actual):
    assert len(expected) == len(actual)
    for want, got in zip(expected, actual):
        assert want is not None and got is not None
        assert sorted(want) == sorted(got)
        for name in want:
            assert np.array_equal(want[name], got[name]), name


class TestHeartbeat:
    def test_sweep_detects_killed_node(self):
        plan = ChaosPlan()
        config = ClusterConfig.build(gpu_nodes=3)
        with HostProcess.launch(config, transport="sim", chaos=plan) as host:
            seen = []
            host.on_node_lost(lambda node, devices: seen.append((node,
                                                                 devices)))
            assert len(host.registry) == 3
            plan.kill("gpu1")  # dies on its next message
            lost = host.heartbeat()
        assert lost == ["gpu1"]
        assert host.is_lost("gpu1")
        assert host.live_nodes() == ["gpu0", "gpu2"]
        assert len(host.registry) == 2
        # the callback saw the node id and its removed devices
        assert [node for node, _d in seen] == ["gpu1"]
        assert len(seen[0][1]) == 1

    def test_heartbeat_updates_last_seen(self):
        config = ClusterConfig.build(gpu_nodes=1)
        with HostProcess.launch(config, transport="sim") as host:
            before = host.last_seen["gpu0"]
            host.heartbeat()
            assert host.last_seen["gpu0"] > before

    def test_heartbeat_payload_reports_load(self):
        config = ClusterConfig.build(gpu_nodes=1)
        with HostProcess.launch(config, transport="sim") as host:
            payload = host.call("gpu0", "heartbeat")
            assert payload["node_id"] == "gpu0"
            assert payload["messages"] >= 1
            assert "resident_bytes" in payload

    def test_background_thread_on_wallclock_fabric(self):
        plan = ChaosPlan()
        config = ClusterConfig.build(gpu_nodes=2)
        with HostProcess.launch(config, transport="inproc", chaos=plan,
                                heartbeat_interval_s=0.05) as host:
            assert host._hb_thread is not None
            plan.dead.add("gpu1")  # the daemon stops answering
            deadline = time.time() + 2.0
            while not host.is_lost("gpu1") and time.time() < deadline:
                time.sleep(0.02)
            assert host.is_lost("gpu1")

    def test_sim_fabric_never_starts_thread(self):
        config = ClusterConfig.build(gpu_nodes=1)
        with HostProcess.launch(config, transport="sim",
                                heartbeat_interval_s=0.05) as host:
            assert host._hb_thread is None  # sweeps stay test-driven

    def test_calls_to_lost_node_short_circuit(self):
        config = ClusterConfig.build(gpu_nodes=2)
        with HostProcess.launch(config, transport="sim") as host:
            host.mark_lost("gpu0")
            with pytest.raises(NodeLostError):
                host.call("gpu0", "ping")
            assert host.mark_lost("gpu0") == []  # idempotent


class TestAcceptanceChaosRun:
    """Kill one node mid-pipeline; all jobs complete bit-identical."""

    SEED = 11

    @staticmethod
    def factory():
        return [matmul_job("t%d" % (i % 2), seed=i) for i in range(6)]

    def _chaos_run(self):
        baseline_jobs, baseline_fault = run_service(self.factory)
        assert all(job.state == DONE for job in baseline_jobs)
        assert baseline_fault["node_losses"] == 0
        victim = baseline_jobs[0].device.node_id

        plan = ChaosPlan(seed=self.SEED)
        plan.kill_random([victim], method="enqueue_ndrange",
                         max_occurrence=3)
        jobs, fault = run_service(self.factory, chaos=plan)
        return baseline_jobs, jobs, fault, plan

    def test_all_jobs_complete_bit_identical(self):
        baseline_jobs, jobs, fault, plan = self._chaos_run()
        assert all(job.state == DONE for job in jobs)
        assert_bit_identical(result_arrays(baseline_jobs),
                             result_arrays(jobs))
        # the recovery is visible in the counters, not just the results
        assert fault["node_losses"] >= 1
        assert fault["jobs_retried"] >= 1
        assert fault["nodes_lost"] >= 1
        assert any(event["fault"] == "kill" for event in plan.events)

    def test_chaos_run_reproducible_from_logged_seed(self):
        _baseline, jobs_a, fault_a, plan_a = self._chaos_run()
        _baseline, jobs_b, fault_b, plan_b = self._chaos_run()
        assert plan_a.seed == plan_b.seed == self.SEED
        assert plan_a.events == plan_b.events
        assert fault_a == fault_b
        assert_bit_identical(result_arrays(jobs_a), result_arrays(jobs_b))

    def test_retry_budget_exhaustion_fails_typed(self):
        plan = ChaosPlan()
        for node in ("gpu0", "gpu1"):
            plan.kill(node, method="enqueue_ndrange", occurrence=1)
        jobs, fault = run_service(
            lambda: [matmul_job("solo", seed=9)],
            chaos=plan, gpu_nodes=2, max_retries=1,
        )
        (job,) = jobs
        assert job.state == "failed"
        assert "retry budget" in str(job.error)
        assert fault["node_losses"] == 2


class TestReplicaPlacement:
    def test_replica_survives_node_loss(self):
        with HaoCLSession(gpu_nodes=2, mode="real",
                          transport="inproc") as session:
            context = session.context()
            device = session.devices[0]
            queue = session.queue(context, device)
            y = np.ones(64, dtype=np.float32)
            x = np.full(64, 2.0, dtype=np.float32)
            ybuf = session.buffer_from(context, y)
            xbuf = session.buffer_from(context, x)
            kernel = session.kernel(
                session.program(context, SAXPY), "saxpy",
                ybuf, xbuf, np.float32(3.0), np.int32(64),
            )
            session.enqueue(queue, kernel, (64,))
            session.finish(queue)
            owner = device.node_id
            assert ybuf.fresh == {owner}
            session.cl.icd.replicate(ybuf, k=2)
            assert len(ybuf.fresh) == 2
            # the node holding the primary copy dies before the read
            session.host.mark_lost(owner)
            assert owner not in ybuf.fresh
            other = session.devices_of("GPU")[0]
            out = session.read_array(session.queue(context, other), ybuf,
                                     np.float32)
            assert np.allclose(out, 7.0)  # 1 + 3*2, read from the replica
            stats = session.cl.icd.transfer_stats()
            assert stats["dmp_replicas"] >= 1
            assert stats["replicas_lost"] == 0

    def test_service_pushes_replicas(self):
        jobs, fault = run_service(
            lambda: [matmul_job("dup", seed=3) for _ in range(2)],
            replicas=2, gpu_nodes=2,
        )
        assert all(job.state == DONE for job in jobs)
        assert fault["dmp_replicas"] >= 1
        assert fault["dmp_replica_bytes"] > 0


class TestElasticity:
    def test_graceful_leave_drains_dirty_buffers(self):
        with HaoCLSession(gpu_nodes=2, mode="real",
                          transport="inproc") as session:
            context = session.context()
            device = session.devices[0]
            queue = session.queue(context, device)
            data = np.arange(32, dtype=np.float32)
            buf = session.buffer_from(context, data)
            kernel = session.kernel(
                session.program(context, SAXPY), "saxpy",
                buf, session.buffer_from(context, data), np.float32(1.0),
                np.int32(32),
            )
            session.enqueue(queue, kernel, (32,))
            session.finish(queue)
            assert buf.fresh == {device.node_id}
            session.leave_node(device.node_id)
            stats = session.cl.icd.transfer_stats()
            assert stats["dmp_drains"] >= 1
            assert stats["replicas_lost"] == 0  # drained, not lost
            other = session.devices[0]
            out = session.read_array(session.queue(context, other), buf,
                                     np.float32)
            assert np.allclose(out, data * 2)

    def test_node_join_adds_devices(self):
        with HaoCLSession(gpu_nodes=1, mode="real",
                          transport="inproc") as session:
            assert len(session.devices) == 1
            joined = session.add_node(NodeConfig("late0", ["gpu"],
                                                 mode="real"))
            assert len(joined) == 1
            assert len(session.devices) == 2
            # fresh global id, never reused
            assert joined[0].global_id == 2
            assert session.host.call("late0", "ping")["node_id"] == "late0"

    def test_rejoin_after_loss_gets_fresh_ids(self):
        with HaoCLSession(gpu_nodes=2, mode="real",
                          transport="inproc") as session:
            session.host.mark_lost("gpu1")
            assert len(session.devices) == 1
            rejoined = session.add_node(NodeConfig("gpu1", ["gpu"],
                                                   mode="real"))
            assert not session.host.is_lost("gpu1")
            assert rejoined[0].global_id == 3
            assert len(session.devices) == 2

    def test_service_sync_devices_after_join(self):
        with HaoCLSession(gpu_nodes=1, mode="real",
                          transport="inproc") as session:
            with HaoCLService(session) as service:
                job_a = service.submit(matmul_job("grow", seed=1))
                service.run()
                assert job_a.state == DONE
                session.add_node(NodeConfig("late0", ["gpu"], mode="real"))
                added = service.sync_devices()
                assert len(added) == 1
                assert len(service.admission.devices) == 2
                job_b = service.submit(matmul_job("grow", seed=2))
                service.run()
                assert job_b.state == DONE

    def test_loss_shrinks_service_capacity(self):
        with HaoCLSession(gpu_nodes=2, mode="real",
                          transport="inproc") as session:
            with HaoCLService(session) as service:
                assert len(service.admission.devices) == 2
                session.host.mark_lost("gpu1")
                assert len(service.admission.devices) == 1
                job = service.submit(matmul_job("shrink", seed=4))
                service.run()
                assert job.state == DONE


class TestDifferentialChaos:
    """Non-fatal chaos (dropped and delayed peer transfers, a lease
    blackout) must never change results: the degraded paths are slower,
    not different."""

    CASES = [
        ("matmul", lambda: [matmul_job("diff", seed=s) for s in range(3)]),
        ("spmv", lambda: [spmv_job("diff", seed=s) for s in range(3)]),
        ("cfd", lambda: [cfd_job("diff", seed=s) for s in range(3)]),
    ]

    @pytest.mark.parametrize("name,factory", CASES,
                             ids=[c[0] for c in CASES])
    def test_peer_faults_keep_results_bit_identical(self, name, factory):
        clean_jobs, _fault = run_service(factory, gpu_nodes=2)
        assert all(job.state == DONE for job in clean_jobs)

        plan = ChaosPlan(seed=3)
        plan.drop_peer(count=2)
        plan.delay_peer(delay_s=0.01)
        plan.blackout("gpu0", methods=("acquire_device",), count=1)
        chaos_jobs, _fault = run_service(factory, chaos=plan, gpu_nodes=2)
        assert all(job.state == DONE for job in chaos_jobs)
        assert_bit_identical(result_arrays(clean_jobs),
                             result_arrays(chaos_jobs))

    @pytest.mark.parametrize("name,factory", CASES,
                             ids=[c[0] for c in CASES])
    def test_node_kill_keeps_results_bit_identical(self, name, factory):
        clean_jobs, _fault = run_service(factory)
        assert all(job.state == DONE for job in clean_jobs)
        victim = clean_jobs[0].device.node_id

        plan = ChaosPlan(seed=5)
        plan.kill(victim, method="enqueue_ndrange", occurrence=1)
        chaos_jobs, fault = run_service(factory, chaos=plan)
        assert all(job.state == DONE for job in chaos_jobs)
        assert fault["node_losses"] == 1
        assert_bit_identical(result_arrays(clean_jobs),
                             result_arrays(chaos_jobs))
