"""The seeded load harness: determinism, invariants, and scale.

The acceptance-level scenario lives here: hundreds of tenants driving
Poisson traffic at an async service on the sim fabric, composed with a
one-node-kill :class:`ChaosPlan`, with :meth:`LoadReport.verify`
asserting no result is lost or duplicated, the fair-share ledger
conserves, and deadline misses are accounted.
"""

import numpy as np
import pytest

from repro.core.session import HaoCLSession
from repro.testing import ChaosPlan, ClosedLoopLoad, OpenLoopLoad
from repro.testing.load import saxpy_job


def open_session(**kwargs):
    kwargs.setdefault("gpu_nodes", 3)
    kwargs.setdefault("transport", "sim")
    return HaoCLSession(**kwargs)


class TestSeededDeterminism:
    def _fingerprint(self, report):
        return (
            report.submitted, report.completed, report.expired,
            report.rate_limited, report.rejected, report.failed,
            round(report.duration_s, 9),
            [round(l, 9) for l in report.latencies_s],
            [job.tenant for job in report.jobs],
        )

    def test_open_loop_replays_bit_for_bit(self):
        def run_once():
            with open_session() as session:
                service = session.service()
                report = OpenLoopLoad(service, tenants=30, rate_hz=300.0,
                                      duration_s=0.3, seed=42).run().verify()
                service.close()
            return self._fingerprint(report)

        assert run_once() == run_once()

    def test_different_seeds_differ(self):
        def run_once(seed):
            with open_session() as session:
                service = session.service()
                report = OpenLoopLoad(service, tenants=10, rate_hz=300.0,
                                      duration_s=0.3, seed=seed).run()
                service.close()
            return [job.tenant for job in report.jobs]

        assert run_once(1) != run_once(2)

    def test_closed_loop_replays_bit_for_bit(self):
        def run_once():
            with open_session(gpu_nodes=2) as session:
                service = session.service()
                report = ClosedLoopLoad(service, tenants=12, concurrency=2,
                                        jobs_per_tenant=3, think_time_s=0.001,
                                        seed=8).run().verify()
                service.close()
            return self._fingerprint(report)

        assert run_once() == run_once()


class TestInvariantsUnderPressure:
    def test_rate_limiting_is_accounted_not_lost(self):
        """An over-rate open loop sees typed rejections; every rejected
        job is still terminal exactly once and conserved in the ledger."""
        with open_session(gpu_nodes=2) as session:
            service = session.service(rate_hz=20.0, burst=1.0)
            report = OpenLoopLoad(service, tenants=4, rate_hz=2000.0,
                                  duration_s=0.05, seed=3).run().verify()
            assert report.rate_limited > 0
            assert report.completed > 0
            assert service.rate_limited == report.rate_limited
            service.close()

    def test_deadline_misses_are_shed_and_counted(self):
        """A stalled service (no pumping during the arrival window)
        accumulates a backlog whose older half blows its deadlines; the
        EDF shed drops exactly those and the miss accounting lines up
        across harness, fault_stats and the metrics registry."""
        with open_session(gpu_nodes=1) as session:
            service = session.service(batching=False)
            report = OpenLoopLoad(
                service, tenants=8, rate_hz=3000.0, duration_s=0.05,
                seed=5, deadline_s=0.02, pump_per_arrival=False,
            ).run().verify()
            assert report.expired > 0
            assert report.completed > 0
            assert report.deadline_miss_rate > 0
            assert report.fault_stats["deadline_misses"] == report.expired
            assert session.telemetry.metrics.value(
                "haocl_serve_deadline_misses_total") == report.expired
            service.close()

    def test_fair_share_over_weighted_tenants(self):
        """Saturating closed loop: served shares track lane weights."""
        with open_session(gpu_nodes=2) as session:
            service = session.service()
            load = ClosedLoopLoad(service, tenants=["heavy", "light"],
                                  weights=[3.0, 1.0], concurrency=4,
                                  jobs_per_tenant=12, seed=2)
            report = load.run().verify()
            assert report.completed == 24
            ledger = report.accounting
            assert ledger["heavy"]["served_jobs"] == 12
            assert ledger["light"]["served_jobs"] == 12
            service.close()


class TestScaleWithChaos:
    def test_200_tenants_one_node_kill_loses_nothing(self):
        """The PR's acceptance scenario: >= 200 tenants of Poisson
        traffic on the sim fabric, one node killed mid-run by a seeded
        chaos plan, zero lost or duplicated results."""
        plan = ChaosPlan(seed=17)
        with open_session(gpu_nodes=3, chaos=plan) as session:
            service = session.service(max_retries=3)
            node_ids = sorted(session.host.fabric.node_ids())
            victim, occurrence = plan.kill_random(
                node_ids, method="enqueue_ndrange", max_occurrence=5)
            report = OpenLoopLoad(service, tenants=200, rate_hz=600.0,
                                  duration_s=0.5, seed=17,
                                  deadline_s=5.0).run().verify()
            assert report.submitted >= 200
            assert report.completed > 0
            assert report.failed == 0
            # the kill fired and the recovery paths absorbed it
            assert report.fault_stats["nodes_lost"] == 1
            assert any(event.get("fault") == "kill"
                       for event in report.chaos_events)
            assert (report.fault_stats["jobs_replayed"]
                    + report.fault_stats["jobs_replica_recovered"]
                    + report.fault_stats["jobs_requeued"]) >= 0
            service.close()

    def test_chaos_load_replays_identically(self):
        def run_once():
            plan = ChaosPlan(seed=23)
            with open_session(gpu_nodes=3, chaos=plan) as session:
                service = session.service(max_retries=3)
                plan.kill_random(sorted(session.host.fabric.node_ids()),
                                 method="enqueue_ndrange", max_occurrence=3)
                report = OpenLoopLoad(service, tenants=50, rate_hz=300.0,
                                      duration_s=0.3, seed=23).run().verify()
                outcome = (report.submitted, report.completed,
                           report.expired, report.failed,
                           [job.state for job in report.jobs],
                           report.chaos_events)
                service.close()
            return outcome

        assert run_once() == run_once()
