"""Property-based tests of the token-bucket rate limiter.

The bucket's contract (never negative, bounded by burst, monotone
refill, exact retry-after pricing) is asserted over hypothesis-generated
event sequences -- arbitrary interleavings of clock steps (including
stalls and backwards jumps, which wall clocks produce) and takes of
arbitrary cost.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve import RateLimited, RateLimiter, TokenBucket
from repro.serve.job import Job

# a bucket event: advance the clock by dt (possibly backwards), then
# optionally attempt a take of the given cost
events = st.lists(
    st.tuples(
        st.floats(min_value=-5.0, max_value=5.0,
                  allow_nan=False, allow_infinity=False),
        st.one_of(st.none(),
                  st.floats(min_value=0.01, max_value=8.0,
                            allow_nan=False, allow_infinity=False)),
    ),
    max_size=50,
)

rates = st.floats(min_value=0.1, max_value=100.0,
                  allow_nan=False, allow_infinity=False)
bursts = st.floats(min_value=0.5, max_value=50.0,
                   allow_nan=False, allow_infinity=False)


def job(tenant="t0"):
    return Job(tenant, "__kernel void k(){}", "k", [], (1,))


class TestTokenBucketProperties:
    @given(rates, bursts, events)
    @settings(max_examples=200, deadline=None)
    def test_tokens_never_negative_and_never_exceed_burst(self, rate, burst,
                                                          sequence):
        bucket = TokenBucket(rate, burst=burst)
        now = 0.0
        for dt, cost in sequence:
            now += dt
            if cost is None:
                bucket.refill(now)
            else:
                bucket.try_take(now, cost=cost)
            assert 0.0 <= bucket.tokens <= bucket.burst + 1e-9

    @given(rates, bursts,
           st.lists(st.floats(min_value=0.0, max_value=10.0,
                              allow_nan=False, allow_infinity=False),
                    max_size=40))
    @settings(max_examples=200, deadline=None)
    def test_refill_is_monotone_without_takes(self, rate, burst, gaps):
        bucket = TokenBucket(rate, burst=burst)
        bucket.tokens = 0.0  # start empty: refill should only ever add
        now, previous = 0.0, 0.0
        for gap in gaps:
            now += gap
            balance = bucket.refill(now)
            assert balance >= previous - 1e-12
            previous = balance

    @given(rates, bursts,
           st.floats(min_value=0.1, max_value=100.0,
                     allow_nan=False, allow_infinity=False))
    @settings(max_examples=100, deadline=None)
    def test_backwards_clock_never_destroys_tokens(self, rate, burst, jump):
        bucket = TokenBucket(rate, burst=burst, now_s=100.0)
        bucket.try_take(100.0, cost=min(1.0, burst))
        before = bucket.tokens
        assert bucket.refill(100.0 - jump) == before

    @given(rates, bursts, events)
    @settings(max_examples=200, deadline=None)
    def test_grant_iff_balance_covers_cost(self, rate, burst, sequence):
        bucket = TokenBucket(rate, burst=burst)
        now = 0.0
        for dt, cost in sequence:
            now += dt
            if cost is None:
                continue
            bucket.refill(now)
            balance = bucket.tokens
            granted, retry_after = bucket.try_take(now, cost=cost)
            if granted:
                assert balance >= cost
                assert retry_after == 0.0
                assert bucket.tokens == pytest.approx(balance - cost)
            else:
                assert balance < cost
                assert bucket.tokens == balance  # denial never debits
                assert retry_after == pytest.approx((cost - balance) / rate)

    @given(rates, st.floats(min_value=1.0, max_value=20.0,
                            allow_nan=False, allow_infinity=False))
    @settings(max_examples=100, deadline=None)
    def test_retry_after_is_exact(self, rate, burst):
        """Waiting exactly retry_after_s makes the denied take succeed."""
        bucket = TokenBucket(rate, burst=burst)
        granted, _ = bucket.try_take(0.0, cost=bucket.burst)  # drain it
        assert granted
        granted, retry_after = bucket.try_take(0.0, cost=1.0)
        assert not granted and retry_after > 0
        granted, _ = bucket.try_take(retry_after * (1 + 1e-9), cost=1.0)
        assert granted

    def test_rejects_nonpositive_parameters(self):
        with pytest.raises(ValueError):
            TokenBucket(0.0)
        with pytest.raises(ValueError):
            TokenBucket(1.0, burst=0.0)
        with pytest.raises(ValueError):
            TokenBucket(1.0).try_take(0.0, cost=0.0)


class TestRateLimiter:
    def test_unlimited_by_default(self):
        limiter = RateLimiter()
        for _ in range(1000):
            limiter.check(job(), now_s=0.0)

    def test_burst_then_typed_rejection_with_retry_after(self):
        limiter = RateLimiter(rate_hz=2.0, burst=3.0)
        for _ in range(3):
            limiter.check(job(), now_s=0.0)
        with pytest.raises(RateLimited) as exc_info:
            limiter.check(job(), now_s=0.0)
        assert exc_info.value.retry_after_s == pytest.approx(0.5)
        # the advertised retry-after is honest: waiting it out admits
        limiter.check(job(), now_s=0.5 + 1e-9)

    def test_tenants_are_isolated(self):
        limiter = RateLimiter(rate_hz=1.0, burst=1.0)
        limiter.check(job("a"), now_s=0.0)
        with pytest.raises(RateLimited):
            limiter.check(job("a"), now_s=0.0)
        limiter.check(job("b"), now_s=0.0)  # b's bucket is untouched

    def test_per_tenant_override_and_exemption(self):
        limiter = RateLimiter(rate_hz=1.0, burst=1.0)
        limiter.configure("vip", rate_hz=100.0, burst=10.0)
        limiter.configure("internal", rate_hz=None)  # exempt
        for _ in range(10):
            limiter.check(job("vip"), now_s=0.0)
        with pytest.raises(RateLimited):
            limiter.check(job("vip"), now_s=0.0)
        for _ in range(100):
            limiter.check(job("internal"), now_s=0.0)

    def test_sim_clock_injection(self):
        clock = {"now": 0.0}
        limiter = RateLimiter(rate_hz=1.0, burst=1.0,
                              clock=lambda: clock["now"])
        limiter.check(job())
        with pytest.raises(RateLimited):
            limiter.check(job())
        clock["now"] = 1.5  # simulated second passes: a token accrued
        limiter.check(job())
