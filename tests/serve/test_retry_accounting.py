"""Fair-share accounting is conserved across retries.

A retried job is pulled (charged), refunded by ``requeue``, and pulled
again: its lane must net exactly one charge -- no double-charge for the
tenant whose job died with a node, and no debt forgiveness either.  The
properties are driven by hypothesis over random job mixes and retry
patterns, then re-checked end to end through a chaos-injected service
run.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import HaoCLSession
from repro.serve import HaoCLService, Job
from repro.serve.job import DONE
from repro.serve.queue import FairShareQueue
from repro.testing import ChaosPlan

SAXPY = """
__kernel void saxpy(__global float* y, __global const float* x,
                    float a, int n) {
    int i = get_global_id(0);
    if (i < n) y[i] = y[i] + a * x[i];
}
"""


class FakeJob:
    """Queue-only stand-in: a tenant, a cost, and queue bookkeeping."""

    _next_id = 0

    def __init__(self, tenant, cost):
        FakeJob._next_id += 1
        self.job_id = FakeJob._next_id
        self.tenant = tenant
        self.cost = cost
        self.footprint_bytes = cost
        self.priority = 0
        self.state = "pending"

    def signature(self):
        return ("sig", "k")


job_lists = st.lists(
    st.tuples(st.sampled_from(["a", "b", "c"]), st.integers(1, 100)),
    min_size=1, max_size=30,
)


@settings(max_examples=60, deadline=None)
@given(jobs=job_lists, retries=st.data())
def test_served_cost_conserved_across_retries(jobs, retries):
    """Drain a queue where any pull may bounce (retry) a bounded number
    of times; per-lane served_cost must equal the cost of the jobs that
    finished, exactly once each."""
    queue = FairShareQueue(quantum=16, cost="bytes")
    for tenant in ("a", "b", "c"):
        queue.register(tenant, weight=1.0)
    for tenant, cost in jobs:
        queue.push(FakeJob(tenant, cost))

    finished = []
    bounces = {}
    while len(queue):
        job = queue.next_job()
        if bounces.get(job.job_id, 0) < 2 and retries.draw(
                st.booleans(), label="retry"):
            bounces[job.job_id] = bounces.get(job.job_id, 0) + 1
            queue.requeue(job)  # the node died: refund and replay
        else:
            finished.append(job)

    ledger = queue.accounting()
    for tenant in ("a", "b", "c"):
        done = [job for job in finished if job.tenant == tenant]
        assert ledger[tenant]["served_jobs"] == len(done)
        assert ledger[tenant]["served_cost"] == sum(j.cost for j in done)
        assert ledger[tenant]["queued"] == 0


@settings(max_examples=60, deadline=None)
@given(jobs=job_lists, batch_retries=st.integers(0, 3))
def test_batched_pull_then_requeue_nets_zero(jobs, batch_retries):
    """take_compatible borrows deficit; requeueing the whole batch must
    repay it exactly (the deferral path after a node loss)."""
    queue = FairShareQueue(quantum=16, cost="bytes")
    for tenant, cost in jobs:
        queue.push(FakeJob(tenant, cost))
    before = {
        name: dict(entry) for name, entry in queue.accounting().items()
    }
    for _ in range(batch_retries):
        taken = queue.take_compatible(("sig", "k"), limit=8)
        for job in taken:
            queue.requeue(job)
    after = queue.accounting()
    assert sorted(after) == sorted(before)
    for name, entry in before.items():
        assert after[name]["served_jobs"] == entry["served_jobs"]
        assert after[name]["served_cost"] == entry["served_cost"]
        assert after[name]["deficit"] == entry["deficit"]
        assert after[name]["queued"] == entry["queued"]


def saxpy_job(tenant, seed):
    rng = np.random.default_rng(seed)
    y = rng.standard_normal(32).astype(np.float32)
    x = rng.standard_normal(32).astype(np.float32)
    return Job(tenant, SAXPY, "saxpy", [y, x, np.float32(2.0), np.int32(32)],
               (32,))


def test_end_to_end_retry_charges_each_job_once():
    """Through a real chaos run: a tenant whose jobs were replayed after
    a node kill is charged once per job, same as the untouched tenant."""

    def run(chaos):
        with HaoCLSession(gpu_nodes=3, mode="real", transport="sim",
                          chaos=chaos) as session:
            with HaoCLService(session, max_retries=3,
                              fairness="bytes") as service:
                jobs = [service.submit(saxpy_job("t%d" % (i % 2), seed=i))
                        for i in range(6)]
                service.run()
                ledger = service.queue.accounting()
                fault = service.fault_stats()
                tenants = service.stats()
        return jobs, ledger, fault, tenants

    clean_jobs, clean_ledger, _fault, _tenants = run(None)
    assert all(job.state == DONE for job in clean_jobs)
    victim = clean_jobs[0].device.node_id

    plan = ChaosPlan(seed=2)
    plan.kill(victim, method="enqueue_ndrange", occurrence=2)
    jobs, ledger, fault, tenants = run(plan)
    assert all(job.state == DONE for job in jobs)
    assert fault["jobs_retried"] >= 1
    # conservation: the chaos run's ledger matches the fault-free run's,
    # despite the extra dispatch attempts
    for tenant in clean_ledger:
        assert ledger[tenant]["served_jobs"] == \
            clean_ledger[tenant]["served_jobs"]
        assert ledger[tenant]["served_cost"] == \
            clean_ledger[tenant]["served_cost"]
    # host-side per-tenant stats count each job completed exactly once,
    # and the replays are visible in the retried counter, not completed
    for tenant, record in tenants.items():
        submitted = sum(1 for job in jobs if job.tenant == tenant)
        assert record["completed"] == submitted
    assert sum(record["retried"] for record in tenants.values()) \
        == fault["jobs_retried"]
