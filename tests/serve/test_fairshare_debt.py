"""Regression tests for the batching-debt bug: a tenant whose lane was
drained by ``take_compatible`` (deficit driven negative) must repay that
debt on later turns -- emptying the lane must not reset it to zero."""

from repro.serve.job import Job
from repro.serve.queue import FairShareQueue

SRC = "__kernel void k(__global int* a) { a[get_global_id(0)] = 1; }"
OTHER = "__kernel void k2(__global int* a) { a[get_global_id(0)] = 2; }"


def make_job(tenant, cost=100, priority=0, source=SRC, kernel="k"):
    return Job(tenant, source, kernel, [], (1,), priority=priority,
               footprint_bytes=cost)


def drain(queue, count):
    out = []
    for _ in range(count):
        job = queue.next_job()
        if job is None:
            break
        out.append(job)
    return out


class TestDebtPreserved:
    def test_emptied_lane_keeps_negative_deficit(self):
        """The regression itself: next_job's rotation passing the
        emptied, indebted lane must preserve the debt (it used to zero
        it, forgiving the whole batch)."""
        queue = FairShareQueue(quantum=100, cost="bytes")
        for _ in range(8):
            queue.push(make_job("a", cost=100))
        for _ in range(4):
            queue.push(make_job("b", cost=100, source=OTHER, kernel="k2"))
        lead = queue.next_job()
        assert lead.tenant == "a"
        taken = queue.take_compatible(lead.signature(), 7)
        assert len(taken) == 7  # lane a fully drained into debt
        lane_a = queue.lane("a")
        assert lane_a.deficit == -700.0
        # serving b while a sits empty must not forgive a's debt
        served = drain(queue, 2)
        assert [job.tenant for job in served] == ["b", "b"]
        assert lane_a.deficit == -700.0

    def test_batch_then_drain_tenant_does_not_exceed_weight_share(self):
        """The acceptance scenario: tenant a batches 8 jobs out in one
        take_compatible, then competes with b for the next 8 slots.  With
        debt preserved, a's total served share converges to its weight
        share (1/2) instead of (8 + 4)/16."""
        queue = FairShareQueue(quantum=100, cost="bytes")
        queue.register("a", weight=1.0)
        queue.register("b", weight=1.0)
        for _ in range(8):
            queue.push(make_job("a", cost=100))
        lead = queue.next_job()
        queue.take_compatible(lead.signature(), 7)  # a's lane drained
        lane_a = queue.lane("a")
        assert lane_a.deficit <= -600  # 8 jobs on ~1 quantum of credit
        # now both tenants compete for 8 more dispatch slots
        for _ in range(8):
            queue.push(make_job("a", cost=100))
            queue.push(make_job("b", cost=100))
        served = [job.tenant for job in drain(queue, 8)]
        # b must get (almost) all of them while a repays its debt:
        # a served 8 early + late slots; fair share of 16 total is 8
        total_a = 8 + served.count("a")
        assert total_a <= 9  # at most one slot of slack, not 12
        assert served.count("b") >= 7

    def test_weighted_debt_repayment_rate(self):
        """A heavier tenant repays the same byte debt in fewer turns."""
        queue = FairShareQueue(quantum=100, cost="bytes")
        queue.register("heavy", weight=4.0)
        queue.register("light", weight=1.0)
        for name in ("heavy", "light"):
            queue.lane(name).deficit = -400.0  # same debt for both
            for _ in range(10):
                queue.push(make_job(name, cost=100))
        served = [job.tenant for job in drain(queue, 10)]
        assert served.count("heavy") > served.count("light")

    def test_positive_credit_still_zeroed_on_idle(self):
        """The other half of the rule is unchanged: an idle lane banks
        no *credit* (it only keeps debt)."""
        queue = FairShareQueue(quantum=100, cost="bytes")
        queue.register("idle")
        for _ in range(20):
            queue.push(make_job("busy", cost=100))
        drain(queue, 10)
        assert queue.lane("idle").deficit == 0.0
        queue.push(make_job("idle", cost=100))
        queue.push(make_job("idle", cost=100))
        served = [job.tenant for job in drain(queue, 4)]
        assert served.count("idle") <= 2

    def test_requeue_still_refunds_after_debt_fix(self):
        """Deferral refunds must compose with preserved debt: a job
        pulled into a batch and requeued leaves the lane's deficit as if
        it had never been taken."""
        queue = FairShareQueue(quantum=100, cost="bytes")
        for _ in range(2):
            queue.push(make_job("a", cost=100))
        lead = queue.next_job()
        before = queue.lane("a").deficit
        taken = queue.take_compatible(lead.signature(), 1)
        assert len(taken) == 1
        queue.requeue(taken[0])
        assert queue.lane("a").deficit == before
