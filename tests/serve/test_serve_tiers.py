"""Execution-tier attribution through the serving stack.

A tenant-submitted kernel with no registered fast path must run on the
vectorized tier, compile exactly once process-wide no matter how many
nodes and batches dispatch it, and show up per-tenant in the NMP
accounting the service aggregates.
"""

import numpy as np
import pytest

from repro.clc.vectorize import global_vectorize_cache
from repro.core import HaoCLSession
from repro.ocl.fastpath import FastPathRegistry
from repro.serve import HaoCLService, Job

SCALE2 = """
__kernel void scale2(__global float* y, int n) {
    int i = get_global_id(0);
    if (i < n) y[i] = y[i] * 2.0f;
}
"""

TILED = """
#define BS 4
__kernel void tiled_copy(__global const float* a, __global float* b, int n) {
    __local float tile[BS];
    int i = get_global_id(0);
    tile[get_local_id(0)] = a[i];
    barrier(1);
    b[i] = tile[get_local_id(0)];
}
"""

N = 32


def _job(tenant, source, kernel, args, gsize, lsize=None):
    return Job(tenant, source, kernel, args, gsize, local_size=lsize)


@pytest.fixture
def session():
    with HaoCLSession(gpu_nodes=2, mode="real", transport="inproc",
                      fastpaths=FastPathRegistry()) as sess:
        yield sess


class TestHostEventTier:
    def test_session_event_carries_tier(self, session):
        ctx = session.context()
        program = session.program(ctx, SCALE2)
        queue = session.queue(ctx, session.devices[0])
        buf = session.buffer_from(ctx, np.ones(N, dtype=np.float32))
        kernel = session.kernel(program, "scale2", buf, np.int32(N))
        event = session.enqueue(queue, kernel, (N,))
        assert event.tier == "vectorized"


class TestServeTierAccounting:
    def test_vectorized_tier_attributed_per_tenant(self, session):
        baseline = global_vectorize_cache.stats()["compiles"]
        with HaoCLService(session) as service:
            service.register_tenant("acme")
            for _ in range(6):
                job = _job("acme", SCALE2, "scale2",
                           [np.ones(N, dtype=np.float32), np.int32(N)], (N,))
                service.submit(job)
            service.run()
            accounting = service.cluster_accounting()
        record = accounting["acme"]
        assert record["launches"] == 6
        assert record["tiers"].get("vectorized") == 6
        # at most one compile for the whole batch stream (zero when an
        # earlier test already warmed the process-wide cache): repeats
        # never recompile
        assert global_vectorize_cache.stats()["compiles"] <= baseline + 1

    def test_interpreter_tier_for_local_mem_kernel(self, session):
        with HaoCLService(session) as service:
            service.register_tenant("tileco")
            job = _job("tileco", TILED, "tiled_copy",
                       [np.arange(N, dtype=np.float32),
                        np.zeros(N, dtype=np.float32), np.int32(N)],
                       (N,), lsize=(4,))
            service.submit(job)
            service.run()
            accounting = service.cluster_accounting()
            assert accounting["tileco"]["tiers"].get("interpreter") == 1
            assert np.allclose(job.result["b"], np.arange(N))

    def test_execution_stats_aggregate(self, session):
        with HaoCLService(session) as service:
            service.register_tenant("acme")
            job = _job("acme", SCALE2, "scale2",
                       [np.ones(N, dtype=np.float32), np.int32(N)], (N,))
            service.submit(job)
            service.run()
            stats = service.execution_stats()
        assert stats["tiers"].get("vectorized", 0) >= 1
        assert "compiles" in stats["compile_cache"]

    def test_results_correct_through_vectorized_tier(self, session):
        with HaoCLService(session) as service:
            service.register_tenant("acme")
            jobs = []
            for k in range(4):
                job = _job("acme", SCALE2, "scale2",
                           [np.full(N, float(k + 1), dtype=np.float32),
                            np.int32(N)], (N,))
                jobs.append(service.submit(job))
            service.run()
        for k, job in enumerate(jobs):
            assert np.allclose(job.result["y"], 2.0 * (k + 1))
