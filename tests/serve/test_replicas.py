"""Concurrent service replicas sharing one cluster.

Two (or more) :class:`AsyncHaoCLService` replicas share a single
:class:`FairShareQueue` and admission controller over one session.
Queue pops are atomic (the queue's lock), so a job is dispatched by
exactly one replica -- the no-double-dispatch invariant asserted here
via ``terminal_count`` -- and device access arbitrates through
:class:`DeviceLease`: exclusive leases defer the other replica until
release, TTLs force the holder to keep renewing its claim.

The seeded interleaving tests replay the same replica schedule twice
and assert identical outcomes; the chaos test does the same through a
node kill, replaying the fault from the plan's event log.
"""

import random
import threading

import numpy as np
import pytest

from repro.core.session import HaoCLSession
from repro.serve import AdmissionController, AsyncHaoCLService, FairShareQueue
from repro.serve.job import DONE, Job
from repro.testing import ChaosPlan

SAXPY = """
__kernel void saxpy(__global float* y, __global const float* x,
                    float a, int n) {
    int i = get_global_id(0);
    if (i < n) y[i] = y[i] + a * x[i];
}
"""
N = 32


def saxpy_job(tenant, seed):
    rng = np.random.default_rng(seed)
    y = rng.standard_normal(N).astype(np.float32)
    x = rng.standard_normal(N).astype(np.float32)
    job = Job(tenant, SAXPY, "saxpy",
              [y, x, np.float32(2.0), np.int32(N)], (N,))
    job.expect = y + 2.0 * x
    return job


def make_replicas(session, count=2, **kwargs):
    """Replicas over one shared queue + admission controller."""
    queue = FairShareQueue()
    admission = AdmissionController(session.devices, max_queue_depth=4096)
    return [
        AsyncHaoCLService(session, queue=queue, admission=admission,
                          user="replica-%d" % index, **kwargs)
        for index in range(count)
    ]


def pump_interleaved(replicas, seed):
    """Drain the shared queue with a seeded random replica schedule;
    returns the (replica index, progress) trace for replay checks."""
    rng = random.Random(seed)
    trace = []
    idle = 0
    while idle < 2 * len(replicas):
        index = rng.randrange(len(replicas))
        progressed = replicas[index].pump(max_batches=1)
        trace.append((index, progressed))
        idle = 0 if progressed else idle + 1
    return trace


class TestNoDoubleDispatch:
    def test_interleaved_replicas_dispatch_each_job_exactly_once(self):
        with HaoCLSession(gpu_nodes=2) as session:
            a, b = make_replicas(session)
            jobs = [saxpy_job("t%d" % (i % 4), seed=i) for i in range(24)]
            for index, job in enumerate(jobs):
                (a if index % 2 else b).submit(job)
            pump_interleaved([a, b], seed=13)
            for job in jobs:
                assert job.state == DONE
                assert job.terminal_count == 1  # exactly-once settlement
                np.testing.assert_allclose(job.result["y"], job.expect,
                                           rtol=1e-6)
            # both replicas pulled from the shared backlog
            total = session.telemetry.metrics.value(
                "haocl_serve_jobs_dispatched_total")
            assert total == len(jobs)
            a.close()
            b.close()

    def test_seeded_interleaving_replays_identically(self):
        def run_once():
            with HaoCLSession(gpu_nodes=2) as session:
                replicas = make_replicas(session)
                jobs = [saxpy_job("t%d" % (i % 3), seed=i)
                        for i in range(12)]
                for index, job in enumerate(jobs):
                    replicas[index % 2].submit(job)
                trace = pump_interleaved(replicas, seed=99)
                outcome = [(job.tenant, job.state,
                            float(np.sum(job.result["y"])))
                           for job in jobs]
                for replica in replicas:
                    replica.close()
            return trace, outcome

        assert run_once() == run_once()

    def test_futures_resolve_across_replicas(self):
        """A future submitted through replica A settles when replica B
        dispatches the job -- resolution rides the job's callbacks."""
        with HaoCLSession(gpu_nodes=2) as session:
            a, b = make_replicas(session)
            future = a.submit(saxpy_job("t0", seed=5))
            assert b.pump() > 0  # B serves the job A admitted
            assert future.done()
            np.testing.assert_allclose(future.result()["y"],
                                       future.job.expect, rtol=1e-6)
            a.close()
            b.close()

    def test_threaded_replicas_race_safely(self):
        """Two replica threads hammer one shared queue; the queue lock
        and the host's call lock keep every job exactly-once."""
        with HaoCLSession(gpu_nodes=2) as session:
            replicas = make_replicas(session)
            jobs = [saxpy_job("t%d" % (i % 4), seed=i) for i in range(32)]
            for index, job in enumerate(jobs):
                replicas[index % 2].submit(job)
            errors = []

            def worker(replica):
                try:
                    while len(replica.queue):
                        replica.pump(max_batches=1)
                except Exception as exc:  # surfaced to the main thread
                    errors.append(exc)

            threads = [threading.Thread(target=worker, args=(replica,))
                       for replica in replicas]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
            assert not errors
            for job in jobs:
                assert job.state == DONE
                assert job.terminal_count == 1
                np.testing.assert_allclose(job.result["y"], job.expect,
                                           rtol=1e-6)
            for replica in replicas:
                replica.close()


class TestLeaseArbitration:
    def test_exclusive_lease_defers_then_hands_off_on_release(self):
        with HaoCLSession(gpu_nodes=1) as session:  # one device: forced contention
            a, b = make_replicas(session, lease_shared=False)
            first = a.submit(saxpy_job("t0", seed=0))
            assert a.pump() > 0
            assert first.done()
            # A still holds the exclusive lease; B cannot dispatch
            second = b.submit(saxpy_job("t1", seed=1))
            assert b.pump(max_batches=1) == 0
            assert b.deferrals > 0
            assert not second.done()
            a.close()  # releases A's leases: the handoff
            assert b.pump() > 0
            assert second.done()
            np.testing.assert_allclose(second.result()["y"],
                                       second.job.expect, rtol=1e-6)
            b.close()

    def test_lease_ttl_renewal_on_sim_time(self):
        """Past its TTL the holder renews (re-asserts) the claim rather
        than dispatching on a stale liveness contract."""
        with HaoCLSession(gpu_nodes=1, transport="sim") as session:
            (service,) = make_replicas(session, count=1, lease_ttl_s=0.5)
            sim = session.host.fabric.sim
            service.submit(saxpy_job("t0", seed=0)).result()
            (lease,) = service._leases.values()
            assert lease.renewals == 0
            sim.timeout(1.0)
            sim.run()  # TTL lapses on the fabric clock
            service.submit(saxpy_job("t0", seed=1)).result()
            assert lease.renewals == 1
            service.close()


class TestChaosReplay:
    def _run(self, seed):
        plan = ChaosPlan(seed=seed)
        with HaoCLSession(gpu_nodes=3, chaos=plan) as session:
            replicas = make_replicas(session, max_retries=3)
            node_ids = sorted(session.host.fabric.node_ids())
            plan.kill_random(node_ids, method="enqueue_ndrange",
                             max_occurrence=4)
            jobs = [saxpy_job("t%d" % (i % 4), seed=i) for i in range(20)]
            for index, job in enumerate(jobs):
                replicas[index % 2].submit(job)
            pump_interleaved(replicas, seed=seed)
            outcome = [(job.tenant, job.state) for job in jobs]
            fault = replicas[0].fault_stats()
            events = list(plan.events)
            for replica in replicas:
                replica.close()
        return events, outcome, fault, jobs

    def test_node_kill_with_two_replicas_loses_nothing(self):
        events, outcome, fault, jobs = self._run(seed=7)
        assert fault["nodes_lost"] == 1
        assert all(state == DONE for _tenant, state in outcome)
        for job in jobs:
            assert job.terminal_count == 1
            np.testing.assert_allclose(job.result["y"], job.expect,
                                       rtol=1e-6)

    def test_chaos_event_log_replays_identically(self):
        first_events, first_outcome, _, _ = self._run(seed=21)
        second_events, second_outcome, _, _ = self._run(seed=21)
        assert first_events == second_events  # the replay log, verbatim
        assert first_outcome == second_outcome
