"""End-to-end serving tests on the in-proc cluster.

Covers the acceptance behaviours of the serving layer: weighted fair
completion under saturation, typed admission rejection with the rest of
the traffic unaffected, and batched dispatch issuing fewer NMP messages
than per-job dispatch.
"""

import numpy as np
import pytest

from repro.core import HaoCLSession
from repro.core.tenancy import DeviceLease
from repro.serve import HaoCLService, Job, JobTooLarge, QueueFull
from repro.serve.admission import AdmissionController
from repro.serve.job import DONE, EXPIRED, FAILED, REJECTED

SAXPY = """
__kernel void saxpy(__global float* y, __global const float* x,
                    float a, int n) {
    int i = get_global_id(0);
    if (i < n) y[i] = y[i] + a * x[i];
}
"""

SCALE = """
__kernel void scale2(__global float* a, int n) {
    int i = get_global_id(0);
    if (i < n) a[i] = a[i] * 2.0f;
}
"""

N = 32


def saxpy_job(tenant, a=2.0, priority=0, deadline_s=None):
    y = np.ones(N, dtype=np.float32)
    x = np.ones(N, dtype=np.float32)
    return Job(tenant, SAXPY, "saxpy", [y, x, a, np.int32(N)], (N,),
               priority=priority, deadline_s=deadline_s)


@pytest.fixture
def session():
    with HaoCLSession(gpu_nodes=2, fpga_nodes=1, mode="real",
                      transport="inproc") as session:
        yield session


def message_total(session):
    return sum(
        payload["messages"]
        for payload in session.host.node_stats().values()
    )


class TestDispatch:
    def test_jobs_complete_with_results(self, session):
        with HaoCLService(session) as service:
            jobs = [service.submit(saxpy_job("alice", a=3.0))
                    for _ in range(4)]
            service.run()
        for job in jobs:
            assert job.state == DONE
            assert np.allclose(job.result["y"], 4.0)  # 1 + 3*1
            assert job.queue_wait_s >= 0
            assert job.service_time_s >= 0
            assert job.device is not None

    def test_mixed_kernels_in_one_queue(self, session):
        with HaoCLService(session) as service:
            jsaxpy = service.submit(saxpy_job("alice"))
            data = np.full(N, 5.0, dtype=np.float32)
            jscale = service.submit(
                Job("bob", SCALE, "scale2", [data, np.int32(N)], (N,))
            )
            service.run()
        assert np.allclose(jsaxpy.result["y"], 3.0)
        assert np.allclose(jscale.result["a"], 10.0)

    def test_read_only_args_not_in_result(self, session):
        with HaoCLService(session) as service:
            job = service.submit(saxpy_job("alice"))
            service.run()
        assert set(job.result) == {"y"}  # x is read-only

    def test_broken_source_fails_job_not_service(self, session):
        """A job whose program cannot build poisons only its batch."""
        broken = "__kernel void boom(__global float* a) { a[0] = b[0]; }"
        with HaoCLService(session) as service:
            bad = service.submit(
                Job("alice", broken, "boom",
                    [np.ones(N, dtype=np.float32)], (N,))
            )
            wrong_args = service.submit(
                Job("alice", SAXPY, "saxpy",
                    [np.ones(N, dtype=np.float32)], (N,))
            )
            ok = service.submit(saxpy_job("alice"))
            service.run()
            stats = service.stats()["alice"]
        assert bad.state == FAILED and bad.error is not None
        assert wrong_args.state == FAILED
        assert ok.state == DONE
        assert stats["failed"] == 2
        assert stats["completed"] == 1


class TestFairness:
    def test_equal_tenants_split_a_saturated_run(self, session):
        """Acceptance (a): two equal-weight tenants each complete >= 40%
        of their jobs when only half the queue is served."""
        with HaoCLService(session, batching=False) as service:
            service.register_tenant("alice", weight=1.0)
            service.register_tenant("bob", weight=1.0)
            for _ in range(20):
                service.submit(saxpy_job("alice"))
            for _ in range(20):
                service.submit(saxpy_job("bob"))
            service.run(max_batches=20)  # saturated: 20 of 40 jobs served
            stats = service.stats()
        for tenant in ("alice", "bob"):
            completed = stats[tenant]["completed"]
            assert completed >= 0.4 * stats[tenant]["submitted"], stats

    def test_weighted_tenant_gets_larger_share(self, session):
        with HaoCLService(session, batching=False) as service:
            service.register_tenant("gold", weight=3.0)
            service.register_tenant("free", weight=1.0)
            for _ in range(24):
                service.submit(saxpy_job("gold"))
                service.submit(saxpy_job("free"))
            service.run(max_batches=16)
            stats = service.stats()
        assert stats["gold"]["completed"] > stats["free"]["completed"]


class TestAdmission:
    def test_over_capacity_rejected_others_continue(self, session):
        """Acceptance (b): an impossible job is refused with a typed
        error while smaller jobs keep flowing."""
        with HaoCLService(session) as service:
            ok_before = service.submit(saxpy_job("alice"))
            huge = Job("alice", SAXPY, "saxpy", [], (1,),
                       footprint_bytes=1 << 50)
            with pytest.raises(JobTooLarge):
                service.submit(huge)
            ok_after = service.submit(saxpy_job("alice"))
            service.run()
            stats = service.stats()["alice"]
        assert huge.state == REJECTED
        assert ok_before.state == DONE
        assert ok_after.state == DONE
        assert stats["rejected"] == 1
        assert stats["completed"] == 2

    def test_queue_depth_backpressure(self, session):
        admission = AdmissionController(session.devices, max_queue_depth=2)
        with HaoCLService(session, admission=admission) as service:
            service.submit(saxpy_job("alice"))
            service.submit(saxpy_job("alice"))
            with pytest.raises(QueueFull):
                service.submit(saxpy_job("alice"))
            service.run()
            assert service.stats()["alice"]["completed"] == 2

    def test_expired_deadline_dropped(self, session):
        with HaoCLService(session) as service:
            job = service.submit(saxpy_job("alice", deadline_s=-1.0))
            live = service.submit(saxpy_job("alice"))
            service.run()
        assert job.state == EXPIRED
        assert live.state == DONE
        assert service.stats()["alice"]["expired"] == 1


class TestBatching:
    def test_batched_dispatch_sends_fewer_nmp_messages(self):
        """Acceptance (c): 16 same-kernel jobs cost fewer NMP messages
        batched than dispatched one by one."""

        def run_jobs(batching):
            with HaoCLSession(gpu_nodes=2, fpga_nodes=1, mode="real",
                              transport="inproc") as session:
                with HaoCLService(session, batching=batching,
                                  max_batch=16) as service:
                    for index in range(16):
                        service.submit(saxpy_job("t%d" % (index % 4)))
                    service.run()
                    assert service.jobs_dispatched == 16
                return message_total(session)

        assert run_jobs(batching=True) < run_jobs(batching=False)

    def test_batch_results_match_per_job_results(self, session):
        with HaoCLService(session, batching=True, max_batch=8) as service:
            jobs = [service.submit(saxpy_job("alice", a=float(i)))
                    for i in range(8)]
            service.run()
        for i, job in enumerate(jobs):
            assert np.allclose(job.result["y"], 1.0 + i), i


class TestRobustness:
    def test_malformed_scalar_fails_only_its_job(self, session):
        with HaoCLService(session) as service:
            bad = service.submit(
                Job("mallory", SAXPY, "saxpy",
                    [np.ones(N, dtype=np.float32),
                     np.ones(N, dtype=np.float32), "oops", np.int32(N)],
                    (N,))
            )
            ok = service.submit(saxpy_job("alice"))
            service.run()
        assert bad.state == FAILED
        assert ok.state == DONE
        assert len(service.queue) == 0  # nothing silently lost

    def test_exclusive_service_lease_dispatches(self, session):
        with HaoCLService(session, lease_shared=False) as service:
            job = service.submit(saxpy_job("alice"))
            service.run()
        assert job.state == DONE

    def test_byte_fairness_with_huge_cost_terminates_fast(self, session):
        with HaoCLService(session, fairness="bytes") as service:
            job = Job("alice", SAXPY, "saxpy",
                      [np.ones(N, dtype=np.float32),
                       np.ones(N, dtype=np.float32), 2.0, np.int32(N)],
                      (N,), footprint_bytes=1 << 30)
            service.submit(job)
            service.run()  # must not spin O(footprint) in the DRR loop
        assert job.state == DONE

    def test_event_lists_drained_between_batches(self, session):
        with HaoCLService(session) as service:
            for _ in range(2):
                for _ in range(4):
                    service.submit(saxpy_job("alice"))
                service.run()
            assert all(len(q.events) == 0 for q in service._queues.values())


class TestLeases:
    def test_service_holds_and_releases_leases(self, session):
        service = HaoCLService(session)
        service.submit(saxpy_job("alice"))
        service.run()
        held = [lease for lease in service._leases.values() if lease.active]
        assert held
        service.close()
        assert not any(lease.active for lease in service._leases.values())

    def test_exclusive_external_lease_stalls_service(self, session):
        """With every device exclusively held elsewhere, the service
        defers instead of crashing, and recovers on release."""
        with DeviceLease(session.cl, "outsider", session.devices,
                         shared=False):
            with HaoCLService(session, lease_shared=True) as service:
                job = service.submit(saxpy_job("alice"))
                assert service.run() == 0
                assert service.deferrals > 0
                assert job.state != DONE
        # outsider released: the same queue drains now
        with HaoCLService(session) as service2:
            service2.queue.push(job)
            assert service2.run() == 1
            assert job.state == DONE


class TestAccounting:
    def test_nmp_accounts_per_tenant(self, session):
        with HaoCLService(session) as service:
            for _ in range(3):
                service.submit(saxpy_job("alice"))
            for _ in range(2):
                service.submit(saxpy_job("bob"))
            service.run()
            accounting = service.cluster_accounting()
        assert accounting["alice"]["launches"] == 3
        assert accounting["alice"]["jobs"] == 3
        assert accounting["bob"]["launches"] == 2
        assert accounting["alice"]["busy_s"] >= 0
