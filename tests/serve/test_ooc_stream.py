"""Out-of-core streaming end to end: degraded admission, chunked
execution with prefetch, bit-identical results.

The acceptance bar: matrixmul, spmv and cfd each run with a buffer
footprint strictly larger than any node's residency table
(``dmp_capacity_bytes``) and produce results bit-identical to the
in-core run, the degradation visible in the typed admission outcome,
the ``haocl_ooc_*`` counters and the trace spans.
"""

import numpy as np
import pytest

from repro.core import HaoCLSession
from repro.serve import (
    DegradedAdmit, HaoCLService, Job, JobTooLarge, plan_chunks,
)
from repro.serve.admission import AdmissionController
from repro.serve.job import DONE, REJECTED
from repro.workloads.base import load_kernel_source

MATMUL = load_kernel_source("matrixmul.cl")
SPMV = load_kernel_source("spmv.cl")
CFD = load_kernel_source("cfd.cl")


def matmul_job(tenant, n=64, seed=0):
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((n, n)).astype(np.float32)
    b = rng.standard_normal((n, n)).astype(np.float32)
    c = np.zeros((n, n), dtype=np.float32)
    return Job(tenant, MATMUL, "matmul",
               [a, b, c, np.int32(n), np.int32(n)], (n, n))


def spmv_job(tenant, nrows=256, seed=0):
    rng = np.random.default_rng(seed)
    lengths = rng.integers(1, 5, size=nrows)
    row_ptr = np.zeros(nrows + 1, dtype=np.int32)
    np.cumsum(lengths, out=row_ptr[1:])
    nnz = int(row_ptr[-1])
    cols = rng.integers(0, nrows, size=nnz).astype(np.int32)
    vals = rng.standard_normal(nnz).astype(np.float32)
    x = rng.standard_normal(nrows).astype(np.float32)
    y = np.zeros(nrows, dtype=np.float32)
    return Job(tenant, SPMV, "spmv_csr",
               [row_ptr, cols, vals, x, y, np.int32(nrows)], (nrows,))


def cfd_job(tenant, ncells=512, seed=0):
    rng = np.random.default_rng(seed)
    variables = np.empty((ncells, 5), dtype=np.float32)
    variables[:, 0] = rng.random(ncells) + 1.0
    variables[:, 1:4] = (rng.random((ncells, 3)) - 0.5) * 0.2
    variables[:, 4] = rng.random(ncells) + 10.0
    variables = variables.reshape(-1)
    areas = (rng.random(ncells) + 0.5).astype(np.float32)
    step_factors = np.zeros(ncells, dtype=np.float32)
    return Job(tenant, CFD, "cfd_step_factor",
               [variables, areas, step_factors, np.int32(ncells)], (ncells,))


#: (factory, dmp_capacity_bytes) -- each footprint strictly exceeds the
#: per-node residency table, so in-core admission would refuse the job
WORKLOADS = [
    ("matrixmul", matmul_job, 20480),
    ("spmv", spmv_job, 1600),
    ("cfd", cfd_job, 4096),
]


def run_one(factory, dmp_capacity_bytes=None, trace=False, **service_kw):
    with HaoCLSession(gpu_nodes=3, mode="real", transport="sim",
                      dmp_capacity_bytes=dmp_capacity_bytes,
                      trace=trace) as session:
        with HaoCLService(session, **service_kw) as service:
            job = service.submit(factory("alice"))
            service.run()
            stats = service.ooc_stats()
        spans = session.telemetry.tracer.spans() if trace else []
    return job, stats, spans


class TestBitIdentical:
    @pytest.mark.parametrize("name,factory,cap", WORKLOADS,
                             ids=[w[0] for w in WORKLOADS])
    def test_oversized_job_matches_in_core_run(self, name, factory, cap):
        probe = factory("alice")
        assert probe.footprint_bytes > cap, "workload must exceed the table"

        reference, ref_stats, _ = run_one(factory)
        degraded, ooc_stats, _ = run_one(factory, dmp_capacity_bytes=cap)

        assert reference.state == DONE and degraded.state == DONE
        # the reference ran in-core, the capped run streamed chunks
        assert ref_stats["jobs"] == 0
        assert ooc_stats["degraded_admits"] == 1
        assert ooc_stats["jobs"] == 1
        assert degraded.ooc_report is not None
        assert degraded.ooc_report["chunks"] > 1
        assert degraded.ooc_report["chunks"] == degraded.ooc_report["planned"]
        assert sorted(reference.result) == sorted(degraded.result)
        for key in reference.result:
            assert np.array_equal(reference.result[key],
                                  degraded.result[key]), key

    def test_prefetch_overlap_is_observable(self):
        job, stats, _ = run_one(matmul_job, dmp_capacity_bytes=20480)
        assert job.state == DONE
        assert stats["chunks"] == job.ooc_report["chunks"] > 1
        assert stats["prefetch_bytes"] > 0
        assert stats["prefetch_s"] > 0
        # issue-ahead hid most of the wire time under running chunks
        assert 0 < stats["prefetch_overlapped_s"] <= stats["prefetch_s"]
        assert stats["overlap_ratio"] > 0.5
        # the stream alternated between two nodes -> real peer traffic
        assert len(set(job.ooc_report["devices"])) > 1


class TestDegradedAdmission:
    def test_admit_returns_typed_degraded_outcome(self):
        with HaoCLSession(gpu_nodes=2, mode="real", transport="sim") as s:
            ctrl = AdmissionController(s.devices, ooc=True,
                                       ooc_capacity_bytes=20480)
            job = matmul_job("alice")
            outcome = ctrl.admit(job, queue_depth=0)
            assert isinstance(outcome, DegradedAdmit)
            assert outcome.degraded
            assert outcome.job is job
            assert outcome.required_bytes == job.footprint_bytes
            assert outcome.capacity_bytes == 20480
            assert outcome.plan.nchunks > 1
            # a job that fits in-core is admitted normally
            small = matmul_job("alice", n=8)
            assert ctrl.admit(small, queue_depth=0) is small

    def test_ooc_off_refuses_with_sizes_and_chunk_hint(self):
        """Satellite: every over-capacity refusal reports required vs.
        available bytes, and -- when the planner could have tiled the
        job -- the chunk count that would have admitted it."""
        with HaoCLSession(gpu_nodes=2, mode="real", transport="sim") as s:
            ctrl = AdmissionController(s.devices, ooc=False,
                                       ooc_capacity_bytes=20480)
            job = matmul_job("alice")
            with pytest.raises(JobTooLarge) as excinfo:
                ctrl.admit(job, queue_depth=0)
        exc = excinfo.value
        assert exc.required_bytes == job.footprint_bytes
        assert exc.available_bytes == 20480
        plan = plan_chunks(job, 20480)
        assert exc.chunks_hint == plan.nchunks
        message = str(exc)
        assert "requires %d B" % job.footprint_bytes in message
        assert "20480 B available" in message
        assert "%d chunks would admit it out-of-core" % plan.nchunks in message

    def test_unchunkable_refusal_reports_sizes_without_hint(self):
        with HaoCLSession(gpu_nodes=2, mode="real", transport="sim") as s:
            ctrl = AdmissionController(s.devices)
            huge = Job("alice", MATMUL, "saxpy", [], (1,),
                       footprint_bytes=1 << 50)
            with pytest.raises(JobTooLarge) as excinfo:
                ctrl.admit(huge, queue_depth=0)
        exc = excinfo.value
        assert exc.required_bytes == 1 << 50
        assert exc.available_bytes > 0
        assert exc.chunks_hint is None
        assert "would admit it out-of-core" not in str(exc)

    def test_service_with_ooc_off_rejects_oversized_job(self):
        with HaoCLSession(gpu_nodes=3, mode="real", transport="sim",
                          dmp_capacity_bytes=20480, ooc=False) as session:
            with HaoCLService(session) as service:
                job = matmul_job("alice")
                with pytest.raises(JobTooLarge) as excinfo:
                    service.submit(job)
                service.run()
                stats = service.ooc_stats()
        assert job.state == REJECTED
        assert excinfo.value.chunks_hint > 1
        assert stats["degraded_admits"] == 0

    def test_session_knob_defaults_service_to_degraded_mode(self):
        job, stats, _ = run_one(spmv_job, dmp_capacity_bytes=1600)
        assert job.state == DONE
        assert stats["degraded_admits"] == 1


class TestOOCTrace:
    def test_stream_spans_share_the_job_trace(self):
        job, _stats, spans = run_one(cfd_job, dmp_capacity_bytes=4096,
                                     trace=True)
        assert job.state == DONE
        trace_id = job.trace.trace_id
        mine = [s for s in spans if s["trace"] == trace_id]
        names = {s["name"] for s in mine}
        assert {"serve.admit", "serve.ooc", "serve.ooc.prefetch",
                "serve.ooc.execute", "serve.ooc.writeback"} <= names
        # the degraded admission is an instant event on the same trace
        events = [s for s in mine if s["name"] == "serve.ooc.degraded_admit"]
        assert events
        # one execute span per chunk, each tagged with its chunk index
        executes = [s for s in mine if s["name"] == "serve.ooc.execute"]
        assert len(executes) == job.ooc_report["chunks"]
        assert sorted(s["args"]["chunk"] for s in executes) == list(
            range(job.ooc_report["chunks"])
        )


class TestOOCMetrics:
    def test_haocl_ooc_counters_reach_the_registry(self):
        with HaoCLSession(gpu_nodes=3, mode="real", transport="sim",
                          dmp_capacity_bytes=20480) as session:
            with HaoCLService(session) as service:
                job = service.submit(matmul_job("alice"))
                service.run()
            snapshot = session.metrics_snapshot()
        assert job.state == DONE
        expected = job.ooc_report["chunks"]

        def value(name):
            samples = snapshot[name]["samples"]
            return samples[0]["value"]

        assert value("haocl_ooc_degraded_admits_total") >= 1
        assert value("haocl_ooc_jobs_total") >= 1
        assert value("haocl_ooc_chunks_total") >= expected
        assert value("haocl_ooc_prefetch_bytes_total") > 0
        assert value("haocl_ooc_prefetch_overlap_ratio") > 0
        assert value("haocl_ooc_max_chunk_bytes") > 0
