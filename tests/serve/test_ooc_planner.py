"""Property tests for the out-of-core chunk planner.

The planner is pure (job shapes + capacity -> plan), so hypothesis can
pin its contract directly: chunks exactly tile the axis (no gap, no
overlap, offsets honored), every chunk's working set fits the capacity
with ``depth`` chunks resident, and planning is deterministic -- the
same shapes and budget always yield the same boundaries.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve import Job, plan_chunks
from repro.serve.ooc import (
    ChunkSpec, Partition, Replicate, chunk_args, chunk_spec_for,
    register_chunk_spec,
)
from repro.workloads.base import load_kernel_source

MATMUL = load_kernel_source("matrixmul.cl")
SPMV = load_kernel_source("spmv.cl")
CFD = load_kernel_source("cfd.cl")

F32 = np.dtype(np.float32).itemsize


def matmul_job(n, seed=0):
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((n, n)).astype(np.float32)
    b = rng.standard_normal((n, n)).astype(np.float32)
    c = np.zeros((n, n), dtype=np.float32)
    return Job("t", MATMUL, "matmul",
               [a, b, c, np.int32(n), np.int32(n)], (n, n))


def spmv_job(nrows, seed=0, max_row=6):
    rng = np.random.default_rng(seed)
    lengths = rng.integers(1, max_row, size=nrows)
    row_ptr = np.zeros(nrows + 1, dtype=np.int32)
    np.cumsum(lengths, out=row_ptr[1:])
    nnz = int(row_ptr[-1])
    cols = rng.integers(0, nrows, size=nnz).astype(np.int32)
    vals = rng.standard_normal(nnz).astype(np.float32)
    x = rng.standard_normal(nrows).astype(np.float32)
    y = np.zeros(nrows, dtype=np.float32)
    return Job("t", SPMV, "spmv_csr",
               [row_ptr, cols, vals, x, y, np.int32(nrows)], (nrows,))


def cfd_job(ncells, seed=0):
    rng = np.random.default_rng(seed)
    variables = (rng.random(ncells * 5) + 1.0).astype(np.float32)
    areas = (rng.random(ncells) + 0.5).astype(np.float32)
    step_factors = np.zeros(ncells, dtype=np.float32)
    return Job("t", CFD, "cfd_step_factor",
               [variables, areas, step_factors, np.int32(ncells)], (ncells,))


def assert_exact_tiling(plan, origin, extent):
    """Chunks cover [origin, origin + extent) with no gap or overlap."""
    assert plan.chunks[0].lo == origin
    assert plan.chunks[-1].hi == origin + extent
    for prev, cur in zip(plan.chunks, plan.chunks[1:]):
        assert prev.hi == cur.lo
    for chunk in plan.chunks:
        assert chunk.hi > chunk.lo
        assert chunk.global_size[plan.axis] == chunk.hi - chunk.lo
        assert chunk.origin[plan.axis] == chunk.lo


def matmul_min_capacity(n, depth):
    # replicated B + depth single-row slices of A and C
    return n * n * F32 + depth * (2 * n * F32)


def spmv_min_capacity(job, depth):
    row_ptr = job.args[0]
    worst_row = int(np.max(np.diff(row_ptr)))
    # replicated x + depth worst 1-row chunks: ptr(2) + cols + vals + y
    part = 2 * row_ptr.dtype.itemsize + worst_row * (4 + F32) + F32
    return job.args[3].nbytes + depth * part


class TestTiling:
    @settings(max_examples=40, deadline=None)
    @given(n=st.integers(4, 48), frac=st.floats(0.15, 1.2),
           depth=st.integers(1, 3))
    def test_matmul_tiles_exactly_and_fits(self, n, frac, depth):
        job = matmul_job(n)
        floor = matmul_min_capacity(n, depth)
        capacity = max(floor, int(job.footprint_bytes * frac))
        plan = plan_chunks(job, capacity, depth=depth)
        assert plan is not None
        assert_exact_tiling(plan, 0, n)
        assert plan.reserve_bytes <= capacity
        for chunk in plan.chunks:
            assert plan.replicated_bytes + depth * chunk.part_bytes <= capacity
            assert chunk.ws_bytes <= capacity

    @settings(max_examples=40, deadline=None)
    @given(nrows=st.integers(4, 96), seed=st.integers(0, 32),
           depth=st.integers(1, 3))
    def test_spmv_csr_windows_are_exact(self, nrows, seed, depth):
        job = spmv_job(nrows, seed=seed)
        capacity = spmv_min_capacity(job, depth) * 2
        plan = plan_chunks(job, capacity, depth=depth)
        assert plan is not None
        assert_exact_tiling(plan, 0, nrows)
        row_ptr, cols, vals = job.args[0], job.args[1], job.args[2]
        covered = 0
        for chunk in plan.chunks:
            args, slices = chunk_args(job, plan, chunk)
            lo, hi = chunk.lo, chunk.hi
            # rebased pointer slice reproduces the rows' local offsets
            assert np.array_equal(args[0], row_ptr[lo:hi + 1] - row_ptr[lo])
            start, stop = slices[1]
            assert (start, stop) == (int(row_ptr[lo]), int(row_ptr[hi]))
            assert np.array_equal(args[1], cols[start:stop])
            assert np.array_equal(args[2], vals[start:stop])
            # chunk bound scalar rewritten, dtype preserved
            assert args[5] == hi - lo and args[5].dtype == np.int32
            covered += stop - start
        assert covered == int(row_ptr[-1])  # every nonzero exactly once

    @settings(max_examples=30, deadline=None)
    @given(ncells=st.integers(4, 64), frac=st.floats(0.2, 1.0))
    def test_cfd_chunks_fit(self, ncells, frac):
        job = cfd_job(ncells)
        floor = 2 * (5 * F32 + F32 + F32)  # depth=2, one cell per chunk
        capacity = max(floor, int(job.footprint_bytes * frac))
        plan = plan_chunks(job, capacity)
        assert plan is not None
        assert_exact_tiling(plan, 0, ncells)
        for chunk in plan.chunks:
            assert (chunk.hi - chunk.lo) * 7 * F32 == chunk.part_bytes

    @settings(max_examples=25, deadline=None)
    @given(n=st.integers(8, 32), origin=st.integers(1, 1000))
    def test_origin_offsets_are_honored(self, n, origin):
        job = matmul_job(n)
        capacity = matmul_min_capacity(n, 2) * 2
        plan = plan_chunks(job, capacity, origin=origin)
        assert plan is not None
        assert_exact_tiling(plan, origin, n)
        # slicing stays relative to the job's arrays, not the offset
        args, slices = chunk_args(job, plan, plan.chunks[0])
        lo, hi = plan.chunks[0].lo, plan.chunks[0].hi
        assert slices[0] == ((lo - origin) * n, (hi - origin) * n)


class TestDeterminism:
    @settings(max_examples=30, deadline=None)
    @given(n=st.integers(4, 40), frac=st.floats(0.15, 1.2))
    def test_same_inputs_same_plan(self, n, frac):
        capacity = max(matmul_min_capacity(n, 2), int(n * n * 3 * F32 * frac))
        first = plan_chunks(matmul_job(n), capacity)
        second = plan_chunks(matmul_job(n), capacity)
        assert first is not None and second is not None
        assert [(c.lo, c.hi) for c in first.chunks] == [
            (c.lo, c.hi) for c in second.chunks
        ]
        assert first.reserve_bytes == second.reserve_bytes

    @settings(max_examples=25, deadline=None)
    @given(nrows=st.integers(4, 64), seed=st.integers(0, 16))
    def test_spmv_replan_is_stable(self, nrows, seed):
        capacity = spmv_min_capacity(spmv_job(nrows, seed=seed), 2) * 3
        plans = [plan_chunks(spmv_job(nrows, seed=seed), capacity)
                 for _ in range(2)]
        assert all(p is not None for p in plans)
        assert [(c.lo, c.hi) for c in plans[0].chunks] == [
            (c.lo, c.hi) for c in plans[1].chunks
        ]


class TestRefusals:
    def test_kernel_without_spec_is_not_planned(self):
        saxpy = """
        __kernel void saxpy(__global float* y, __global const float* x,
                            float a, int n) {
            int i = get_global_id(0);
            if (i < n) y[i] = y[i] + a * x[i];
        }
        """
        n = 64
        job = Job("t", saxpy, "saxpy",
                  [np.zeros(n, np.float32), np.ones(n, np.float32),
                   np.float32(2.0), np.int32(n)], (n,))
        assert chunk_spec_for("saxpy") is None
        assert plan_chunks(job, 1 << 10) is None

    def test_replicated_buffer_larger_than_capacity(self):
        # matmul's B must be wholly resident; capacity below it -> None
        job = matmul_job(16)
        assert plan_chunks(job, job.args[1].nbytes - 1) is None

    def test_single_row_axis_is_not_chunked(self):
        job = matmul_job(8)
        job.global_size = (8, 1)
        assert plan_chunks(job, 1) is None

    def test_spec_that_cannot_reassemble_writes_is_still_planned(self):
        # planning is shape-only; the runner (not the planner) refuses
        # written non-partition args, pinned in the stream tests
        register_chunk_spec("_ooc_test_repl", ChunkSpec(axis=0, rules={
            0: Replicate(),
            1: Partition(stride=1),
        }))
        try:
            n = 32
            job = Job("t", "__kernel void k() {}", "_ooc_test_repl",
                      [np.zeros(n, np.float32), np.zeros(n, np.float32)], (n,))
            plan = plan_chunks(job, n * F32 + 4 * F32)
            assert plan is not None
        finally:
            from repro.serve import ooc
            ooc._SPECS.pop("_ooc_test_repl", None)
