"""Fair-share queue unit tests (deficit round-robin semantics)."""

import pytest

from repro.serve.job import Job
from repro.serve.queue import FairShareQueue

SRC = "__kernel void k(__global int* a) { a[get_global_id(0)] = 1; }"
OTHER = "__kernel void k2(__global int* a) { a[get_global_id(0)] = 2; }"


def make_job(tenant, cost=100, priority=0, source=SRC, kernel="k"):
    return Job(tenant, source, kernel, [], (1,), priority=priority,
               footprint_bytes=cost)


def drain(queue, count):
    out = []
    for _ in range(count):
        job = queue.next_job()
        if job is None:
            break
        out.append(job)
    return out


class TestLaneOrder:
    def test_fifo_within_tenant(self):
        queue = FairShareQueue(quantum=1000)
        jobs = [make_job("a") for _ in range(5)]
        for job in jobs:
            queue.push(job)
        assert drain(queue, 5) == jobs

    def test_priority_over_fifo(self):
        queue = FairShareQueue(quantum=1000)
        low = make_job("a", priority=0)
        high = make_job("a", priority=5)
        queue.push(low)
        queue.push(high)
        assert drain(queue, 2) == [high, low]

    def test_requeue_restores_front_position(self):
        queue = FairShareQueue(quantum=1000)
        first = make_job("a")
        second = make_job("a")
        queue.push(first)
        queue.push(second)
        taken = queue.next_job()
        assert taken is first
        queue.requeue(taken)  # deferred dispatch goes back to the front
        assert drain(queue, 2) == [first, second]


class TestDeficitRoundRobin:
    def test_equal_weights_alternate(self):
        queue = FairShareQueue(quantum=100, cost="bytes")
        for _ in range(10):
            queue.push(make_job("a", cost=100))
            queue.push(make_job("b", cost=100))
        served = [job.tenant for job in drain(queue, 10)]
        assert served.count("a") == 5
        assert served.count("b") == 5

    def test_weighted_shares(self):
        queue = FairShareQueue(quantum=100, cost="bytes")
        queue.register("a", weight=2.0)
        queue.register("b", weight=1.0)
        for _ in range(30):
            queue.push(make_job("a", cost=100))
            queue.push(make_job("b", cost=100))
        served = [job.tenant for job in drain(queue, 15)]
        assert served.count("a") == 10
        assert served.count("b") == 5

    def test_heavy_tenant_cannot_starve_light(self):
        queue = FairShareQueue(quantum=100, cost="bytes")
        for _ in range(50):
            queue.push(make_job("heavy", cost=100))
        queue.push(make_job("light", cost=100))
        served = drain(queue, 3)
        assert "light" in [job.tenant for job in served]

    def test_large_job_accumulates_deficit_across_turns(self):
        queue = FairShareQueue(quantum=100, cost="bytes")
        big = make_job("a", cost=250)
        queue.push(big)
        queue.push(make_job("b", cost=100))
        served = drain(queue, 2)
        assert big in served  # several turns bank enough deficit

    def test_idle_lane_banks_no_deficit(self):
        queue = FairShareQueue(quantum=100, cost="bytes")
        queue.register("idle")
        for _ in range(20):
            queue.push(make_job("busy", cost=100))
        drain(queue, 10)
        queue.push(make_job("idle", cost=100))
        queue.push(make_job("idle", cost=100))
        # the idle lane gets its fair turn but no banked burst beyond it
        served = [job.tenant for job in drain(queue, 4)]
        assert served.count("idle") <= 2


class TestTakeCompatible:
    def test_takes_only_matching_signature(self):
        queue = FairShareQueue(quantum=1000)
        same = [make_job("a"), make_job("b")]
        different = make_job("a", source=OTHER, kernel="k2")
        for job in same + [different]:
            queue.push(job)
        lead = queue.next_job()
        extra = queue.take_compatible(lead.signature(), 10)
        assert set(extra) == set(same) - {lead}
        assert len(queue) == 1  # the incompatible job stays queued

    def test_respects_limit(self):
        queue = FairShareQueue(quantum=1000)
        for _ in range(10):
            queue.push(make_job("a"))
        lead = queue.next_job()
        assert len(queue.take_compatible(lead.signature(), 3)) == 3

    def test_charges_the_owning_lane(self):
        queue = FairShareQueue(quantum=100, cost="bytes")
        for _ in range(4):
            queue.push(make_job("a", cost=100))
            queue.push(make_job("b", cost=100))
        lead = queue.next_job()
        queue.take_compatible(lead.signature(), 7)
        lane_a, lane_b = queue.lane("a"), queue.lane("b")
        assert lane_a.served_cost == 400
        assert lane_b.served_cost == 400
        assert lane_b.deficit < 0  # batching borrowed future turns


class TestValidation:
    def test_zero_weight_rejected(self):
        with pytest.raises(ValueError):
            FairShareQueue().register("a", weight=0)

    def test_bad_quantum_rejected(self):
        with pytest.raises(ValueError):
            FairShareQueue(quantum=0)
