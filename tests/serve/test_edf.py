"""EDF deadline scheduling and explicit lane rotation.

Hypothesis properties over generated (priority, deadline) workloads:
within a tenant lane the queue never inverts deadlines at equal
priority, shedding removes *exactly* the past-deadline set, and the
deque-based rotation stays deterministic under lane insertion and
removal (the old index-modulo rotation shifted arbitrarily when the
lane list changed).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve.job import EXPIRED, QUEUED, Job
from repro.serve.queue import FairShareQueue

SRC = "__kernel void k(__global int* a) { a[get_global_id(0)] = 1; }"


def make_job(tenant, priority=0, deadline_s=None, submitted_s=0.0):
    job = Job(tenant, SRC, "k", [], (1,), priority=priority,
              deadline_s=deadline_s, footprint_bytes=64)
    job.submitted_s = submitted_s  # the service sets this before push
    return job


def drain(queue):
    out = []
    while True:
        job = queue.next_job()
        if job is None:
            return out
        out.append(job)


# (priority, relative deadline or None) per job, one tenant
workloads = st.lists(
    st.tuples(st.integers(0, 3),
              st.one_of(st.none(),
                        st.floats(min_value=0.01, max_value=100.0,
                                  allow_nan=False, allow_infinity=False))),
    min_size=1, max_size=30,
)


class TestEDFOrdering:
    @given(workloads)
    @settings(max_examples=150, deadline=None)
    def test_same_tenant_deadlines_never_invert(self, specs):
        queue = FairShareQueue(quantum=1000)
        for priority, deadline_s in specs:
            queue.push(make_job("a", priority=priority,
                                deadline_s=deadline_s))
        served = drain(queue)
        assert len(served) == len(specs)
        for earlier, later in zip(served, served[1:]):
            assert earlier.priority >= later.priority
            if earlier.priority == later.priority:
                e = earlier.absolute_deadline_s
                l = later.absolute_deadline_s
                # deadline-less jobs trail every deadline-carrying one;
                # equal deadlines fall back to FIFO submission order
                if e is None:
                    assert l is None
                    assert earlier.job_id < later.job_id
                elif l is not None:
                    assert e <= l
                    if e == l:
                        assert earlier.job_id < later.job_id

    def test_earlier_deadline_beats_fifo(self):
        queue = FairShareQueue(quantum=1000)
        late = make_job("a", deadline_s=10.0)
        early = make_job("a", deadline_s=1.0)
        queue.push(late)
        queue.push(early)
        assert drain(queue) == [early, late]

    def test_priority_still_dominates_deadline(self):
        queue = FairShareQueue(quantum=1000)
        urgent_low = make_job("a", priority=0, deadline_s=0.1)
        relaxed_high = make_job("a", priority=1, deadline_s=99.0)
        queue.push(urgent_low)
        queue.push(relaxed_high)
        assert drain(queue) == [relaxed_high, urgent_low]

    def test_requeue_preserves_edf_position(self):
        queue = FairShareQueue(quantum=1000)
        first = make_job("a", deadline_s=1.0)
        second = make_job("a", deadline_s=2.0)
        queue.push(first)
        queue.push(second)
        taken = queue.next_job()
        assert taken is first
        queue.requeue(taken)
        assert drain(queue) == [first, second]


class TestShedExpired:
    @given(workloads,
           st.floats(min_value=0.0, max_value=120.0,
                     allow_nan=False, allow_infinity=False))
    @settings(max_examples=150, deadline=None)
    def test_shed_is_exactly_the_past_deadline_set(self, specs, now_s):
        queue = FairShareQueue(quantum=1000)
        jobs = [make_job("t%d" % (i % 3), priority=p, deadline_s=d)
                for i, (p, d) in enumerate(specs)]
        for job in jobs:
            queue.push(job)
        expected = {j.job_id for j in jobs if j.past_deadline(now_s)}
        shed = queue.shed_expired(now_s)
        assert {j.job_id for j in shed} == expected
        survivors = drain(queue)
        assert {j.job_id for j in survivors} == (
            {j.job_id for j in jobs} - expected)
        assert all(not j.past_deadline(now_s) for j in survivors)

    def test_shed_charges_no_deficit(self):
        queue = FairShareQueue(quantum=1000)
        queue.push(make_job("a", deadline_s=0.5))
        queue.shed_expired(now_s=1.0)
        ledger = queue.accounting()["a"]
        assert ledger["served_jobs"] == 0
        assert ledger["deficit"] == 0.0

    def test_shed_job_state_is_callers_problem(self):
        """shed_expired only removes; the service marks EXPIRED."""
        queue = FairShareQueue(quantum=1000)
        job = make_job("a", deadline_s=0.5)
        queue.push(job)
        (shed,) = queue.shed_expired(now_s=1.0)
        assert shed is job
        assert job.state == QUEUED  # still, until the service expires it
        assert job.state != EXPIRED


class TestExplicitRotation:
    def test_registration_order_is_drain_order(self):
        # quantum=1 with unit job cost: exactly one job per lane turn,
        # so the served sequence is the rotation order verbatim
        queue = FairShareQueue(quantum=1)
        for tenant in ("a", "b", "c"):
            queue.push(make_job(tenant))
            queue.push(make_job(tenant))
        served = [job.tenant for job in drain(queue)]
        assert served == ["a", "b", "c", "a", "b", "c"]

    def test_unregister_does_not_disturb_the_head(self):
        queue = FairShareQueue(quantum=1)
        for tenant in ("a", "b", "c", "d"):
            queue.register(tenant)
        for tenant in ("a", "b", "c", "d"):
            queue.push(make_job(tenant))
            queue.push(make_job(tenant))
        assert queue.next_job().tenant == "a"
        assert queue.next_job().tenant == "b"
        # head is now "c"; removing "a" (drained of one, still holds
        # one) must not shift whose turn it is
        queue.unregister("a", force=True)
        assert queue.next_job().tenant == "c"
        assert queue.next_job().tenant == "d"
        assert queue.next_job().tenant == "b"

    def test_new_tenant_joins_at_the_tail(self):
        queue = FairShareQueue(quantum=1)
        for tenant in ("a", "b"):
            queue.push(make_job(tenant))
            queue.push(make_job(tenant))
        assert queue.next_job().tenant == "a"
        queue.push(make_job("late"))  # registers mid-cycle, behind b
        served = [job.tenant for job in drain(queue)]
        assert served == ["b", "late", "a", "b"]

    def test_unregister_refuses_nonempty_without_force(self):
        queue = FairShareQueue(quantum=1000)
        queue.push(make_job("a"))
        with pytest.raises(ValueError):
            queue.unregister("a")
        abandoned = queue.unregister("a", force=True)
        assert len(abandoned) == 1
        assert len(queue) == 0
        assert "a" not in queue.tenants()

    def test_unregister_unknown_tenant_is_a_noop(self):
        assert FairShareQueue().unregister("ghost") == []

    @given(st.lists(st.sampled_from(["push_a", "push_b", "push_c",
                                     "drain_one", "drop_b"]),
                    min_size=1, max_size=40))
    @settings(max_examples=150, deadline=None)
    def test_rotation_is_deterministic_under_churn(self, script):
        """Two queues fed the same insert/remove/drain script serve the
        same tenant sequence -- rotation state is a pure function of
        the operation history."""

        def execute(queue):
            served = []
            dropped_b = False
            for op in script:
                if op == "drain_one":
                    job = queue.next_job()
                    if job is not None:
                        served.append(job.tenant)
                elif op == "drop_b":
                    if not dropped_b:
                        queue.unregister("b", force=True)
                        dropped_b = True
                else:
                    tenant = op.split("_")[1]
                    if not (dropped_b and tenant == "b"):
                        queue.push(make_job(tenant))
            while True:
                job = queue.next_job()
                if job is None:
                    break
                served.append(job.tenant)
            return served

        assert execute(FairShareQueue(quantum=1000)) == execute(
            FairShareQueue(quantum=1000))
