"""Differential: the async front-end versus the sync service.

The event-driven :class:`AsyncHaoCLService` and the blocking
:class:`HaoCLService` share one dispatch core, so the same job stream
submitted to each must produce *bit-identical* output buffers on the
real workload kernels (matmul, spmv, cfd) and identical fair-share
ledgers -- the reactor rebuild changed when work happens, never what
runs or who gets charged for it.
"""

import numpy as np
import pytest

from repro.core.session import HaoCLSession
from repro.serve import AsyncHaoCLService, HaoCLService, Job
from repro.serve.job import DONE
from repro.workloads import get_workload

RNG_SEED = 1234


def workload_jobs():
    """One deterministic job stream over the three workloads, four
    tenants; rebuilt per run so each service gets fresh twin arrays."""
    rng = np.random.default_rng(RNG_SEED)
    jobs = []

    matmul = get_workload("matrixmul").source
    n = 16
    for index in range(3):
        a = rng.random((n, n), dtype=np.float32)
        b = rng.random((n, n), dtype=np.float32)
        jobs.append((Job("tenant-%d" % (index % 4), matmul, "matmul",
                         [a, b, np.zeros(n * n, dtype=np.float32),
                          np.int32(n), np.int32(n)], (n, n)), "C"))

    spmv = get_workload("spmv").source
    nrows, nnz = 24, 96
    for index in range(3):
        row_ptr = np.linspace(0, nnz, nrows + 1).astype(np.int32)
        jobs.append((Job("tenant-%d" % ((index + 1) % 4), spmv,
                         "spmv_row_lengths",
                         [row_ptr, np.zeros(nrows, dtype=np.int32),
                          np.int32(nrows)], (nrows,)), "lengths"))

    cfd = get_workload("cfd").source
    ncells = 20
    for index in range(3):
        variables = np.empty(ncells * 5, dtype=np.float32)
        variables[0::5] = rng.random(ncells) + 1.0
        variables[1::5] = rng.random(ncells) * 0.2
        variables[2::5] = rng.random(ncells) * 0.2
        variables[3::5] = rng.random(ncells) * 0.2
        variables[4::5] = rng.random(ncells) + 2.0
        areas = (rng.random(ncells) + 0.1).astype(np.float32)
        jobs.append((Job("tenant-%d" % ((index + 2) % 4), cfd,
                         "cfd_step_factor",
                         [variables, areas,
                          np.zeros(ncells, dtype=np.float32),
                          np.int32(ncells)], (ncells,)), "step_factors"))
    return jobs


def run_sync():
    with HaoCLSession(gpu_nodes=2) as session:
        with HaoCLService(session) as service:
            pairs = workload_jobs()
            for job, _out in pairs:
                service.submit(job)
            service.run()
            return pairs, service.queue.accounting()


def run_async():
    with HaoCLSession(gpu_nodes=2) as session:
        service = AsyncHaoCLService(session)
        pairs = workload_jobs()
        futures = [service.submit(job) for job, _out in pairs]
        for future in service.stream(futures):
            assert future.done()
        accounting = service.queue.accounting()
        service.close()
        return pairs, accounting


class TestSyncAsyncDifferential:
    def test_results_bit_identical_and_ledgers_agree(self):
        sync_pairs, sync_ledger = run_sync()
        async_pairs, async_ledger = run_async()
        assert len(sync_pairs) == len(async_pairs) == 9
        for (sync_job, out), (async_job, _out) in zip(sync_pairs,
                                                      async_pairs):
            assert sync_job.state == DONE
            assert async_job.state == DONE
            assert sync_job.kernel_name == async_job.kernel_name
            assert sync_job.tenant == async_job.tenant
            sync_out = sync_job.result[out]
            async_out = async_job.result[out]
            # bit-identical, not approximately equal: same tier, same
            # lane semantics, same bytes
            assert sync_out.dtype == async_out.dtype
            assert np.array_equal(
                sync_out.view(np.uint8), async_out.view(np.uint8)
            ), "%s output diverged between sync and async" % out
        assert sync_ledger == async_ledger

    def test_async_matches_direct_numpy_ground_truth(self):
        pairs, _ledger = run_async()
        for job, out in pairs:
            if job.kernel_name != "matmul":
                continue
            a = job.args[0].reshape(16, 16)
            b = job.args[1].reshape(16, 16)
            np.testing.assert_allclose(
                job.result[out].reshape(16, 16),
                a.astype(np.float64) @ b.astype(np.float64),
                rtol=1e-5,
            )

    def test_repeat_async_runs_are_bit_stable(self):
        first, _ = run_async()
        second, _ = run_async()
        for (job_a, out), (job_b, _out) in zip(first, second):
            assert np.array_equal(job_a.result[out], job_b.result[out])
