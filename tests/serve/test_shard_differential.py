"""Differential suite for sharded execution (ISSUE 10 acceptance).

matrixmul, spmv and cfd each run with a buffer footprint strictly
larger than any single node's residency table (``dmp_capacity_bytes``)
as a *sharded* job spread across the cluster, and the result must be
bit-identical to the single-node in-core run -- under both block and
cyclic distributions, with the DMP fabric on and off, and with zero
host-relayed bytes on the shard data path (scatter/replicate/gather
all ride ``dmp_push``/``dmp_pull`` chains).
"""

import numpy as np
import pytest

from repro.core import HaoCLSession
from repro.core.sharding import Distribution
from repro.serve import HaoCLService
from repro.serve.job import DONE
from tests.serve.test_ooc_stream import cfd_job, matmul_job, spmv_job

#: (factory, shard capacity): smaller than the whole footprint, large
#: enough for a 2-shard working set (replicated args + one shard slice)
WORKLOADS = [
    ("matrixmul", matmul_job, 32768),
    ("spmv", spmv_job, 5000),
    ("cfd", cfd_job, 8000),
]

DISTRIBUTIONS = [
    Distribution.block(),
    Distribution.cyclic(block_size=8),
]


def run_one(factory, dmp_capacity_bytes=None, dmp=True, **service_kw):
    with HaoCLSession(gpu_nodes=3, mode="real", transport="sim",
                      dmp=dmp,
                      dmp_capacity_bytes=dmp_capacity_bytes) as session:
        with HaoCLService(session, **service_kw) as service:
            job = service.submit(factory("alice"))
            service.run()
            stats = service.shard_stats()
            relayed = session.cl.icd.bytes_host_relayed
    return job, stats, relayed


class TestShardedBitIdentical:
    @pytest.mark.parametrize("dist", DISTRIBUTIONS,
                             ids=[d.kind for d in DISTRIBUTIONS])
    @pytest.mark.parametrize("name,factory,cap", WORKLOADS,
                             ids=[w[0] for w in WORKLOADS])
    def test_sharded_matches_single_node_run(self, name, factory, cap,
                                             dist):
        probe = factory("alice")
        assert probe.footprint_bytes > cap, "workload must exceed the table"

        reference, ref_stats, _ = run_one(factory)
        sharded, stats, relayed = run_one(
            factory, dmp_capacity_bytes=cap, shard=True,
            shard_distribution=dist)

        assert reference.state == DONE and sharded.state == DONE
        # the reference ran whole on one node; the capped run sharded
        assert ref_stats["jobs"] == 0
        assert stats["shard_admits"] == 1
        assert stats["jobs"] == 1
        report = sharded.shard_report
        assert report is not None
        assert report["shards"] >= 2
        assert report["shards"] == report["planned"]
        assert len(set(report["nodes"])) == report["shards"]
        assert report["distribution"] == repr(dist)
        # shard traffic is all peer-to-peer: nothing bounced off the host
        assert relayed == 0

        assert sorted(reference.result) == sorted(sharded.result)
        for key in reference.result:
            assert np.array_equal(reference.result[key],
                                  sharded.result[key]), key

    @pytest.mark.parametrize("name,factory,cap", WORKLOADS,
                             ids=[w[0] for w in WORKLOADS])
    def test_dmp_off_parity(self, name, factory, cap):
        """Without the DMP fabric the shards still compute the same
        bits -- the fabric changes the wire path, never the result."""
        with_dmp, stats_on, _ = run_one(
            factory, dmp_capacity_bytes=cap, shard=True)
        without, stats_off, _ = run_one(
            factory, dmp_capacity_bytes=cap, dmp=False, shard=True)

        assert with_dmp.state == DONE and without.state == DONE
        assert stats_on["shard_admits"] == stats_off["shard_admits"] == 1
        for key in with_dmp.result:
            assert np.array_equal(with_dmp.result[key],
                                  without.result[key]), key


class TestShardObservability:
    def test_stats_and_report_agree(self):
        job, stats, _ = run_one(matmul_job, dmp_capacity_bytes=32768,
                                shard=True)
        assert job.state == DONE
        report = job.shard_report
        assert stats["sublaunches"] == report["sublaunches"]
        assert stats["scatter_bytes"] == report["scatter_bytes"] > 0
        assert stats["gather_bytes"] == report["gather_bytes"] > 0
        assert stats["shard_rebuilds"] == report["rebuilds"] == 0
        # every shard became exactly one sub-launch (one span per shard
        # under block distribution)
        assert report["sublaunches"] == report["shards"]

    def test_shard_spans_traced(self):
        with HaoCLSession(gpu_nodes=3, mode="real", transport="sim",
                          dmp_capacity_bytes=32768, trace=True) as session:
            with HaoCLService(session, shard=True) as service:
                job = service.submit(matmul_job("alice"))
                service.run()
            spans = session.telemetry.tracer.spans()
        assert job.state == DONE
        names = [s["name"] for s in spans]
        assert "serve.shard" in names
        assert names.count("serve.shard.execute") == \
            job.shard_report["sublaunches"]
        assert "serve.shard.scatter" in names
        assert "serve.shard.gather" in names

    def test_ooc_still_wins_when_sharding_disabled(self):
        job, stats, _ = run_one(matmul_job, dmp_capacity_bytes=32768,
                                shard=False, ooc=True)
        assert job.state == DONE
        assert stats["shard_admits"] == 0
        assert job.shard_report is None
        assert job.ooc_report is not None
