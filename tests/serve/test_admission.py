"""Admission controller unit tests (capacity + backpressure)."""

import pytest

from repro.cluster import ClusterConfig, HostProcess
from repro.core.scheduler.device_model import model_for
from repro.serve.admission import (
    AdmissionController,
    AdmissionError,
    DegradedAdmit,
    JobTooLarge,
    QueueFull,
    ShardedAdmit,
)
from repro.serve.job import Job
from tests.serve.test_ooc_stream import matmul_job

SRC = "__kernel void k(__global int* a) { a[get_global_id(0)] = 1; }"


@pytest.fixture(scope="module")
def devices():
    config = ClusterConfig.build(gpu_nodes=2, mode="modeled")
    with HostProcess.launch(config, transport="inproc") as host:
        yield host.registry.all()


def make_job(nbytes, tenant="t"):
    return Job(tenant, SRC, "k", [], (1,), footprint_bytes=nbytes)


class TestCapacityAdmission:
    def test_capacity_comes_from_device_model(self, devices):
        ctrl = AdmissionController(devices, headroom=1.0)
        for device in devices:
            assert ctrl.capacity_bytes(device) == \
                model_for(device).global_mem_bytes

    def test_over_capacity_raises_typed_error(self, devices):
        ctrl = AdmissionController(devices)
        limit = max(ctrl.capacity_bytes(d) for d in devices)
        with pytest.raises(JobTooLarge) as info:
            ctrl.admit(make_job(limit + 1), queue_depth=0)
        assert isinstance(info.value, AdmissionError)
        assert info.value.reason == "over-capacity"
        assert info.value.job is not None

    def test_job_at_capacity_admitted(self, devices):
        ctrl = AdmissionController(devices)
        limit = max(ctrl.capacity_bytes(d) for d in devices)
        assert ctrl.admit(make_job(limit), queue_depth=0)

    def test_headroom_shrinks_capacity(self, devices):
        full = AdmissionController(devices, headroom=1.0)
        half = AdmissionController(devices, headroom=0.5)
        for device in devices:
            assert half.capacity_bytes(device) == \
                full.capacity_bytes(device) // 2


class TestBackpressure:
    def test_queue_full_raises(self, devices):
        ctrl = AdmissionController(devices, max_queue_depth=4)
        with pytest.raises(QueueFull) as info:
            ctrl.admit(make_job(16), queue_depth=4)
        assert info.value.reason == "queue-full"

    def test_tenant_depth_bound(self, devices):
        ctrl = AdmissionController(devices, max_tenant_depth=2)
        ctrl.admit(make_job(16), queue_depth=10, tenant_depth=1)
        with pytest.raises(QueueFull):
            ctrl.admit(make_job(16), queue_depth=10, tenant_depth=2)


class TestReservations:
    def test_reserve_release_round_trip(self, devices):
        ctrl = AdmissionController(devices)
        device = devices[0]
        free = ctrl.free_bytes(device)
        ctrl.reserve(1000, device)
        assert ctrl.free_bytes(device) == free - 1000
        ctrl.release(1000, device)
        assert ctrl.free_bytes(device) == free

    def test_fits_now_respects_reservations(self, devices):
        ctrl = AdmissionController(devices)
        device = devices[0]
        ctrl.reserve(ctrl.free_bytes(device), device)
        assert not ctrl.fits_now(1, device)
        assert device not in ctrl.candidates(1)

    def test_overfull_reserve_raises(self, devices):
        ctrl = AdmissionController(devices)
        device = devices[0]
        with pytest.raises(JobTooLarge):
            ctrl.reserve(ctrl.free_bytes(device) + 1, device)

    def test_candidates_filter(self, devices):
        ctrl = AdmissionController(devices)
        assert ctrl.candidates(1) == devices
        ctrl.reserve(ctrl.free_bytes(devices[0]), devices[0])
        assert ctrl.candidates(1) == devices[1:]


class TestShardedAdmission:
    """Preference order for an oversized job: sharded in-core first,
    then out-of-core streaming, then a typed refusal hinting at both."""

    CAP = 32768  # holds replicated B plus one matmul shard, not the job

    def test_shard_preferred_over_ooc(self, devices):
        ctrl = AdmissionController(devices, shard=True, ooc=True,
                                   ooc_capacity_bytes=self.CAP)
        job = matmul_job("alice")
        assert job.footprint_bytes > self.CAP
        outcome = ctrl.admit(job, queue_depth=0)
        assert isinstance(outcome, ShardedAdmit)
        assert outcome.sharded and not outcome.degraded
        assert outcome.job is job
        assert outcome.plan.nshards >= 2
        assert outcome.required_bytes == job.footprint_bytes
        assert outcome.capacity_bytes == self.CAP

    def test_shard_off_falls_back_to_ooc(self, devices):
        ctrl = AdmissionController(devices, shard=False, ooc=True,
                                   ooc_capacity_bytes=self.CAP)
        outcome = ctrl.admit(matmul_job("alice"), queue_depth=0)
        assert isinstance(outcome, DegradedAdmit)
        assert outcome.degraded and not outcome.sharded

    def test_refusal_hints_at_both_escapes(self, devices):
        ctrl = AdmissionController(devices, shard=False, ooc=False,
                                   ooc_capacity_bytes=self.CAP)
        with pytest.raises(JobTooLarge) as info:
            ctrl.admit(matmul_job("alice"), queue_depth=0)
        assert info.value.shards_hint >= 2
        assert info.value.chunks_hint > 1
        message = str(info.value)
        assert "shards would admit it in-core across the cluster" in message
        assert "(shard=True)" in message
        assert "(ooc=True)" in message

    def test_unshardable_kernel_still_streams(self, devices):
        # no chunk spec for this kernel: the shard planner refuses, the
        # ooc planner refuses too, and the hints stay unset
        ctrl = AdmissionController(devices, shard=True, ooc=False,
                                   ooc_capacity_bytes=1024)
        with pytest.raises(JobTooLarge) as info:
            ctrl.admit(make_job(2048), queue_depth=0)
        assert info.value.shards_hint is None
        assert info.value.chunks_hint is None

    def test_shard_capacity_map_covers_every_node(self, devices):
        ctrl = AdmissionController(devices, shard=True,
                                   ooc_capacity_bytes=self.CAP)
        caps = ctrl.shard_capacity_map()
        assert sorted(caps) == sorted({d.node_id for d in devices})
        assert all(budget == self.CAP for budget in caps.values())


class TestValidation:
    def test_empty_device_set_rejected(self):
        with pytest.raises(ValueError):
            AdmissionController([])

    def test_bad_headroom_rejected(self, devices):
        with pytest.raises(ValueError):
            AdmissionController(devices, headroom=0.0)
