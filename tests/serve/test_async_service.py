"""The event-driven serving front-end: futures, streams, rate limits,
deadline shedding, and the asyncio driver."""

import asyncio

import numpy as np
import pytest

from repro.core.session import HaoCLSession
from repro.serve import (
    AsyncHaoCLService,
    JobExpired,
    JobFuture,
    QueueFull,
    RateLimited,
)
from repro.serve.job import DONE, EXPIRED, REJECTED, Job

SAXPY = """
__kernel void saxpy(__global float* y, __global const float* x,
                    float a, int n) {
    int i = get_global_id(0);
    if (i < n) y[i] = y[i] + a * x[i];
}
"""
N = 32


def saxpy_job(tenant, seed=0, deadline_s=None, priority=0):
    rng = np.random.default_rng(seed)
    y = rng.standard_normal(N).astype(np.float32)
    x = rng.standard_normal(N).astype(np.float32)
    job = Job(tenant, SAXPY, "saxpy",
              [y, x, np.float32(2.0), np.int32(N)], (N,),
              deadline_s=deadline_s, priority=priority)
    job.expect = y + 2.0 * x
    return job


@pytest.fixture()
def session():
    with HaoCLSession(gpu_nodes=2) as sess:
        yield sess


@pytest.fixture()
def sim_session():
    with HaoCLSession(gpu_nodes=2, transport="sim") as sess:
        yield sess


class TestSubmitAndFutures:
    def test_submit_is_nonblocking_and_returns_a_future(self, session):
        service = AsyncHaoCLService(session)
        future = service.submit(saxpy_job("t0"))
        assert isinstance(future, JobFuture)
        assert not future.done()
        assert len(service.queue) == 1  # nothing dispatched yet

    def test_result_pumps_inline_and_is_correct(self, session):
        service = AsyncHaoCLService(session)
        job = saxpy_job("t0", seed=3)
        result = service.submit(job).result()
        np.testing.assert_allclose(result["y"], job.expect, rtol=1e-6)
        assert job.state == DONE

    def test_done_callbacks_fire_once_on_settlement(self, session):
        service = AsyncHaoCLService(session)
        fired = []
        future = service.submit(saxpy_job("t0"))
        future.add_done_callback(fired.append)
        future.result()
        assert fired == [future]
        future.add_done_callback(fired.append)  # already settled: inline
        assert fired == [future, future]
        assert future.job.terminal_count == 1

    def test_exception_for_admission_rejection(self, session):
        service = AsyncHaoCLService(
            session,
            admission=__import__("repro.serve.admission",
                                 fromlist=["AdmissionController"])
            .AdmissionController(session.devices, max_queue_depth=1),
        )
        service.submit(saxpy_job("t0"))
        with pytest.raises(QueueFull):
            service.submit(saxpy_job("t0"))

    def test_drain_futures_settles_everything(self, session):
        service = AsyncHaoCLService(session)
        futures = [service.submit(saxpy_job("t%d" % (i % 3), seed=i))
                   for i in range(9)]
        settled = service.drain_futures()
        assert set(settled) == set(futures)
        assert service.load_stats()["outstanding"] == 0


class TestRateLimiting:
    def test_over_rate_submissions_reject_with_retry_after(self, session):
        service = AsyncHaoCLService(session, rate_hz=2.0, burst=2.0)
        service.submit(saxpy_job("t0"))
        service.submit(saxpy_job("t0"))
        with pytest.raises(RateLimited) as exc_info:
            service.submit(saxpy_job("t0"))
        assert exc_info.value.retry_after_s > 0
        assert service.rate_limited == 1
        assert service.stats()["t0"]["rate_limited"] == 1
        # the registry series moved too
        assert session.telemetry.metrics.value(
            "haocl_serve_rate_limited_total") >= 1

    def test_rate_limited_job_is_terminal_exactly_once(self, session):
        service = AsyncHaoCLService(session, rate_hz=1.0, burst=1.0)
        service.submit(saxpy_job("t0"))
        job = saxpy_job("t0")
        with pytest.raises(RateLimited):
            service.submit(job)
        assert job.state == REJECTED
        assert job.terminal_count == 1
        assert isinstance(job.error, RateLimited)

    def test_limiter_runs_on_fabric_time(self, sim_session):
        """Tokens refill as *simulated* seconds pass."""
        service = AsyncHaoCLService(sim_session, rate_hz=1.0, burst=1.0)
        sim = sim_session.host.fabric.sim
        service.submit(saxpy_job("t0", seed=0))
        with pytest.raises(RateLimited):
            service.submit(saxpy_job("t0", seed=1))
        sim.timeout(1.5)
        sim.run()  # 1.5 simulated seconds: one token back
        service.submit(saxpy_job("t0", seed=2))

    def test_per_tenant_override(self, session):
        service = AsyncHaoCLService(session, rate_hz=1.0, burst=1.0)
        service.limiter.configure("vip", rate_hz=None)  # exempt
        for i in range(5):
            service.submit(saxpy_job("vip", seed=i))
        service.submit(saxpy_job("t0"))
        with pytest.raises(RateLimited):
            service.submit(saxpy_job("t0"))


class TestDeadlines:
    def test_expired_jobs_are_shed_not_dispatched(self, sim_session):
        service = AsyncHaoCLService(sim_session)
        sim = sim_session.host.fabric.sim
        doomed = service.submit(saxpy_job("t0", deadline_s=0.5))
        safe = service.submit(saxpy_job("t1", deadline_s=60.0))
        sim.timeout(1.0)
        sim.run()  # one simulated second: past doomed's deadline
        service.pump()
        assert doomed.job.state == EXPIRED
        assert safe.job.state == DONE
        with pytest.raises(JobExpired):
            doomed.result()
        assert service.deadline_misses == 1
        assert doomed.job.terminal_count == 1

    def test_default_deadline_is_applied(self, sim_session):
        service = AsyncHaoCLService(sim_session, default_deadline_s=0.25)
        future = service.submit(saxpy_job("t0"))
        assert future.job.deadline_s == 0.25

    def test_miss_rate_in_fault_stats(self, sim_session):
        service = AsyncHaoCLService(sim_session)
        sim = sim_session.host.fabric.sim
        service.submit(saxpy_job("t0", deadline_s=0.1))
        service.submit(saxpy_job("t0", seed=1))
        sim.timeout(1.0)
        sim.run()
        service.pump()
        stats = service.fault_stats()
        assert stats["deadline_misses"] == 1
        assert stats["deadline_miss_rate"] == pytest.approx(0.5)
        assert sim_session.telemetry.metrics.value(
            "haocl_serve_deadline_misses_total") >= 1

    def test_e2e_latency_histogram_observes_completions(self, session):
        service = AsyncHaoCLService(session)
        service.submit(saxpy_job("t0")).result()
        child = service._h_e2e.labels(tenant="t0")
        assert child.count == 1
        assert child.quantile(0.99) is not None


class TestStreams:
    def test_stream_yields_every_future_in_completion_order(self, session):
        service = AsyncHaoCLService(session, batching=False)
        futures = [service.submit(saxpy_job("t%d" % i, seed=i))
                   for i in range(6)]
        seen = list(service.stream(futures))
        assert sorted(f.job.job_id for f in seen) == sorted(
            f.job.job_id for f in futures)
        assert all(f.done() for f in seen)
        # completion order is settlement order: each yield was terminal
        # no later than the next
        assert [f.job.state for f in seen] == [DONE] * 6

    def test_stream_includes_already_settled_futures(self, session):
        service = AsyncHaoCLService(session)
        first = service.submit(saxpy_job("t0"))
        first.result()
        second = service.submit(saxpy_job("t1"))
        seen = list(service.stream([first, second]))
        assert seen[0] is first  # settled futures yield immediately


class TestAsyncioDriver:
    def test_await_future_under_serve_forever(self, session):
        service = AsyncHaoCLService(session)

        async def scenario():
            server = asyncio.ensure_future(service.serve_forever())
            try:
                job = saxpy_job("t0", seed=9)
                result = await service.submit(job)
                np.testing.assert_allclose(result["y"], job.expect,
                                           rtol=1e-6)
            finally:
                server.cancel()
                with pytest.raises(asyncio.CancelledError):
                    await server
            assert service._serving is False

        asyncio.new_event_loop().run_until_complete(scenario())

    def test_await_raises_typed_errors(self, sim_session):
        service = AsyncHaoCLService(sim_session)
        sim = sim_session.host.fabric.sim

        async def scenario():
            future = service.submit(saxpy_job("t0", deadline_s=0.1))
            sim.timeout(1.0)
            sim.run()
            service.pump()
            with pytest.raises(JobExpired):
                await future

        asyncio.new_event_loop().run_until_complete(scenario())

    def test_as_completed_yields_all(self, session):
        service = AsyncHaoCLService(session)

        async def scenario():
            futures = [service.submit(saxpy_job("t%d" % i, seed=i))
                       for i in range(4)]
            server = asyncio.ensure_future(service.serve_forever())
            try:
                seen = []
                async for future in service.as_completed(futures):
                    seen.append(future)
                assert set(seen) == set(futures)
            finally:
                server.cancel()
                try:
                    await server
                except asyncio.CancelledError:
                    pass

        asyncio.new_event_loop().run_until_complete(scenario())


class TestSessionHelper:
    def test_session_service_builds_both_flavours(self, session):
        from repro.serve import HaoCLService

        async_service = session.service()
        sync_service = session.service(async_=False)
        assert isinstance(async_service, AsyncHaoCLService)
        assert type(sync_service) is HaoCLService
