"""Batch formation unit tests."""

import pytest

from repro.serve.batcher import Batch, Batcher
from repro.serve.job import Job
from repro.serve.queue import FairShareQueue

SRC_A = "__kernel void k(__global int* a) { a[get_global_id(0)] = 1; }"
SRC_B = "__kernel void k(__global int* a) { a[get_global_id(0)] = 2; }"


def make_job(tenant="t", source=SRC_A, kernel="k", options=""):
    return Job(tenant, source, kernel, [], (8,), footprint_bytes=64,
               options=options)


class TestBatch:
    def test_compatible_jobs_group(self):
        jobs = [make_job("a"), make_job("b")]
        batch = Batch(jobs)
        assert len(batch) == 2
        assert batch.tenants() == ["a", "b"]
        assert batch.footprint_bytes == 128
        assert batch.work_items == 16

    def test_incompatible_source_rejected(self):
        with pytest.raises(ValueError):
            Batch([make_job(), make_job(source=SRC_B)])

    def test_build_options_are_part_of_the_signature(self):
        with pytest.raises(ValueError):
            Batch([make_job(), make_job(options="-DBS=4")])

    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError):
            Batch([])


class TestBatcher:
    def test_coalesces_across_tenants(self):
        queue = FairShareQueue()
        for index in range(6):
            queue.push(make_job("a" if index % 2 else "b"))
        batch = Batcher(queue, max_batch=16).next_batch()
        assert len(batch) == 6
        assert len(queue) == 0

    def test_max_batch_respected(self):
        queue = FairShareQueue()
        for _ in range(10):
            queue.push(make_job())
        batch = Batcher(queue, max_batch=4).next_batch()
        assert len(batch) == 4
        assert len(queue) == 6

    def test_mixed_kernels_split_into_batches(self):
        queue = FairShareQueue()
        queue.push(make_job(source=SRC_A))
        queue.push(make_job(source=SRC_B))
        queue.push(make_job(source=SRC_A))
        batcher = Batcher(queue, max_batch=16)
        first = batcher.next_batch()
        assert len(first) == 2  # both SRC_A jobs
        second = batcher.next_batch()
        assert len(second) == 1
        assert second.source == SRC_B

    def test_disabled_batching_is_per_job(self):
        queue = FairShareQueue()
        for _ in range(4):
            queue.push(make_job())
        batcher = Batcher(queue, enabled=False)
        assert len(batcher.next_batch()) == 1
        assert len(queue) == 3

    def test_idle_queue_yields_none(self):
        assert Batcher(FairShareQueue()).next_batch() is None
