"""Lease protocol tests (paper §III-D host-side multi-user support)."""

import types

import pytest

from repro.core import HaoCLSession
from repro.core.tenancy import DeviceLease, try_acquire
from repro.ocl import enums
from repro.ocl.errors import CLError


@pytest.fixture
def session():
    with HaoCLSession(gpu_nodes=2, fpga_nodes=1, mode="real",
                      transport="inproc") as session:
        yield session


class TestExclusiveVsShared:
    def test_exclusive_blocks_other_users(self, session):
        gpus = session.devices_of("GPU")
        with DeviceLease(session.cl, "alice", gpus, shared=False):
            with pytest.raises(CLError) as info:
                DeviceLease(session.cl, "bob", gpus, shared=False).acquire()
            assert info.value.code == enums.CL_DEVICE_NOT_AVAILABLE

    def test_shared_leases_coexist(self, session):
        gpus = session.devices_of("GPU")
        with DeviceLease(session.cl, "alice", gpus, shared=True):
            with DeviceLease(session.cl, "bob", gpus, shared=True):
                pass

    def test_shared_then_exclusive_refused(self, session):
        gpus = session.devices_of("GPU")
        with DeviceLease(session.cl, "alice", gpus, shared=True):
            with pytest.raises(CLError):
                DeviceLease(session.cl, "bob", gpus, shared=False).acquire()

    def test_owner_may_upgrade_its_own_claim(self, session):
        device = session.devices[:1]
        with DeviceLease(session.cl, "alice", device, shared=True):
            DeviceLease(session.cl, "alice", device, shared=False).acquire()


class TestPartialGrantRollback:
    def test_failed_acquire_releases_earlier_grants(self, session):
        devices = session.devices
        blocker = DeviceLease(session.cl, "bob", [devices[-1]], shared=False)
        blocker.acquire()
        lease = DeviceLease(session.cl, "alice", devices, shared=False)
        with pytest.raises(CLError):
            lease.acquire()  # last device is held; earlier grants roll back
        assert not lease.active
        blocker.release()
        # the rolled-back devices are free again for an exclusive claim
        with DeviceLease(session.cl, "carol", devices, shared=False):
            pass


class TestTryAcquire:
    def test_returns_none_on_unavailable(self, session):
        gpus = session.devices_of("GPU")
        with DeviceLease(session.cl, "alice", gpus, shared=False):
            assert try_acquire(session.cl, "bob", gpus, shared=False) is None

    def test_success_returns_active_lease(self, session):
        lease = try_acquire(session.cl, "bob", session.devices_of("GPU"))
        assert lease is not None and lease.active
        lease.release()

    def test_other_errors_still_raise(self, session):
        bogus = types.SimpleNamespace(
            node_id=session.devices[0].node_id, local_handle=999999
        )
        with pytest.raises(CLError) as info:
            try_acquire(session.cl, "bob", [bogus])
        assert info.value.code != enums.CL_DEVICE_NOT_AVAILABLE


class TestRenewal:
    def test_lease_without_ttl_never_expires(self, session):
        with DeviceLease(session.cl, "alice", session.devices[:1]) as lease:
            assert not lease.expired()
            assert lease.expires_s is None

    def test_ttl_expiry_and_renew(self, session):
        lease = DeviceLease(session.cl, "alice", session.devices[:1],
                            ttl_s=0.0)
        lease.acquire()
        assert lease.expired(lease.acquired_s + 1.0)
        lease.ttl_s = 60.0
        lease.renew()
        assert lease.renewals == 1
        assert not lease.expired(lease.acquired_s + 1.0)
        lease.release()
        assert lease.expires_s is None

    def test_renew_keeps_exclusivity(self, session):
        gpus = session.devices_of("GPU")
        lease = DeviceLease(session.cl, "alice", gpus, shared=False,
                            ttl_s=30.0)
        lease.acquire()
        lease.renew()
        assert try_acquire(session.cl, "bob", gpus, shared=False) is None
        lease.release()

    def test_renew_inactive_lease_raises(self, session):
        lease = DeviceLease(session.cl, "alice", session.devices[:1])
        with pytest.raises(CLError):
            lease.renew()
