"""Tests for distribution-aware sharding: spans, plans, argument
slicing and the reassembly round trip."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.sharding import (
    Distribution,
    plan_shards,
    scatter_windows,
    shard_args,
    shard_count_hint,
    shard_spans,
)
from repro.serve import Job
from repro.workloads.base import load_kernel_source

MATMUL = load_kernel_source("matrixmul.cl")
SPMV = load_kernel_source("spmv.cl")
CFD = load_kernel_source("cfd.cl")


def matmul_job(n=16, seed=0):
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((n, n)).astype(np.float32)
    b = rng.standard_normal((n, n)).astype(np.float32)
    c = np.zeros((n, n), dtype=np.float32)
    return Job("t", MATMUL, "matmul",
               [a, b, c, np.int32(n), np.int32(n)], (n, n))


def spmv_job(nrows=64, seed=0):
    rng = np.random.default_rng(seed)
    lengths = rng.integers(1, 5, size=nrows)
    row_ptr = np.zeros(nrows + 1, dtype=np.int32)
    np.cumsum(lengths, out=row_ptr[1:])
    nnz = int(row_ptr[-1])
    cols = rng.integers(0, nrows, size=nnz).astype(np.int32)
    vals = rng.standard_normal(nnz).astype(np.float32)
    x = rng.standard_normal(nrows).astype(np.float32)
    y = np.zeros(nrows, dtype=np.float32)
    return Job("t", SPMV, "spmv_csr",
               [row_ptr, cols, vals, x, y, np.int32(nrows)], (nrows,))


def cfd_job(ncells=64, seed=0):
    rng = np.random.default_rng(seed)
    variables = rng.random(ncells * 5).astype(np.float32)
    areas = (rng.random(ncells) + 0.5).astype(np.float32)
    step_factors = np.zeros(ncells, dtype=np.float32)
    return Job("t", CFD, "cfd_step_factor",
               [variables, areas, step_factors, np.int32(ncells)], (ncells,))


class TestDistribution:
    def test_kinds_and_validation(self):
        assert not Distribution.single().sharded
        assert Distribution.block().sharded
        assert Distribution.cyclic().sharded
        with pytest.raises(ValueError):
            Distribution("diagonal")
        with pytest.raises(ValueError):
            Distribution.block(halo=-1)
        with pytest.raises(ValueError):
            Distribution.cyclic(block_size=0)

    def test_equality_and_hash(self):
        assert Distribution.block() == Distribution.block()
        assert Distribution.block() != Distribution.block(halo=1)
        assert Distribution.cyclic(4) != Distribution.cyclic(2)
        assert len({Distribution.block(), Distribution.block()}) == 1


class TestShardSpans:
    dists = st.one_of(
        st.just(Distribution.block()),
        st.integers(1, 7).map(lambda b: Distribution.cyclic(block_size=b)),
    )

    @given(st.integers(0, 2_000), st.integers(1, 8), dists)
    @settings(max_examples=150, deadline=None)
    def test_spans_exactly_tile_the_axis(self, extent, nshards, dist):
        """All shards' spans together cover [0, extent) exactly once,
        in order within each shard."""
        spans_per = shard_spans(extent, nshards, dist)
        assert len(spans_per) == nshards
        covered = []
        for spans in spans_per:
            previous = -1
            for lo, hi in spans:
                assert 0 <= lo < hi <= extent
                assert lo > previous  # order-preserving within a shard
                previous = hi
                covered.extend(range(lo, hi))
        assert sorted(covered) == list(range(extent))

    @given(st.integers(0, 2_000), st.integers(1, 8), dists)
    @settings(max_examples=50, deadline=None)
    def test_spans_deterministic(self, extent, nshards, dist):
        assert (shard_spans(extent, nshards, dist)
                == shard_spans(extent, nshards, dist))

    def test_block_weights_respect_zero(self):
        spans = shard_spans(12, 3, Distribution.block(), weights=[1, 0, 1])
        assert spans[1] == []
        assert sum(hi - lo for s in spans for lo, hi in s) == 12

    def test_cyclic_deals_round_robin(self):
        spans = shard_spans(8, 2, Distribution.cyclic(block_size=2))
        assert spans == [[(0, 2), (4, 6)], [(2, 4), (6, 8)]]

    def test_cyclic_coalesces_adjacent_blocks(self):
        # one shard: every block is adjacent, so one span comes back
        spans = shard_spans(8, 1, Distribution.cyclic(block_size=2))
        assert spans == [[(0, 8)]]


class TestPlanShards:
    def test_plans_across_capped_nodes(self):
        job = matmul_job(n=16)
        # whole job ~3KiB; per-node budget only holds about half of it
        plan = plan_shards(job, {"n0": 2048, "n1": 2048, "n2": 2048})
        assert plan is not None
        assert plan.nshards >= 2
        assert all(shard.ws_bytes <= 2048 for shard in plan.shards)
        assert sum(shard.rows for shard in plan.shards) == plan.extent

    def test_uses_fewest_nodes_that_fit(self):
        job = matmul_job(n=16)
        plan = plan_shards(job, {"n0": None, "n1": None, "n2": None})
        assert plan is not None and plan.nshards == 2

    def test_refuses_single_node(self):
        assert plan_shards(matmul_job(), {"n0": None}) is None

    def test_refuses_unknown_kernel(self):
        job = matmul_job()
        job.kernel_name = "mystery"
        job._signature = None
        assert plan_shards(job, {"n0": None, "n1": None}) is None

    def test_refuses_when_no_split_fits(self):
        job = matmul_job(n=16)
        # replicated B alone (1 KiB) exceeds the budget: nothing fits
        assert plan_shards(job, {"n0": 512, "n1": 512, "n2": 512}) is None

    def test_capacity_weighted_block_split(self):
        job = cfd_job(ncells=64)  # no replicated argument
        plan = plan_shards(job, {"big": 2048, "small": 1024})
        assert plan is not None
        rows = [shard.rows for shard in plan.shards]
        assert rows[0] > rows[1]

    def test_hint_matches_plan(self):
        job = matmul_job(n=16)
        caps = {"n0": 2048, "n1": 2048, "n2": 2048}
        plan = plan_shards(job, caps)
        assert shard_count_hint(job, caps) == plan.nshards
        assert shard_count_hint(matmul_job(), {"n0": None}) is None

    def test_halo_widens_working_set(self):
        job = cfd_job(ncells=64)
        caps = {"n0": None, "n1": None}
        narrow = plan_shards(job, caps, distribution=Distribution.block())
        wide = plan_shards(job, caps,
                           distribution=Distribution.block(halo=2))
        assert wide.max_shard_bytes > narrow.max_shard_bytes


class TestShardArgsRoundTrip:
    """Slicing then scattering written windows must reproduce a
    reference computation exactly -- the planner's core invariant."""

    dists = [Distribution.block(), Distribution.cyclic(block_size=1),
             Distribution.cyclic(block_size=3)]

    @pytest.mark.parametrize("dist", dists, ids=[repr(d) for d in dists])
    def test_spmv_csr_reassembles_bit_identically(self, dist):
        job = spmv_job(nrows=64)
        row_ptr, cols, vals, x, _y, nrows = job.args
        plan = plan_shards(job, {"n0": None, "n1": None, "n2": None},
                           distribution=dist)
        assert plan is not None

        # the dense reference
        reference = np.zeros(64, dtype=np.float32)
        for row in range(64):
            lo, hi = int(row_ptr[row]), int(row_ptr[row + 1])
            reference[row] = np.dot(vals[lo:hi], x[cols[lo:hi]])

        assembled = np.zeros(64, dtype=np.float32)
        for shard in plan.shards:
            args, windows = shard_args(job, plan, shard, written=(4,))
            s_ptr, s_cols, s_vals, s_x, s_y, s_n = args
            assert int(s_n) == shard.rows
            assert s_ptr[0] == 0 and len(s_ptr) == shard.rows + 1
            out = np.zeros(shard.rows, dtype=np.float32)
            for row in range(shard.rows):
                lo, hi = int(s_ptr[row]), int(s_ptr[row + 1])
                out[row] = np.dot(s_vals[lo:hi], s_x[s_cols[lo:hi]])
            scatter_windows(assembled, windows[4], out)
        assert np.array_equal(assembled, reference)

    @pytest.mark.parametrize("dist", dists, ids=[repr(d) for d in dists])
    def test_matmul_reassembles_bit_identically(self, dist):
        n = 16
        job = matmul_job(n=n)
        a, b = job.args[0], job.args[1]
        plan = plan_shards(job, {"n0": None, "n1": None},
                           distribution=dist)
        assert plan is not None
        reference = (a.astype(np.float32) @ b.astype(np.float32))
        assembled = np.zeros(n * n, dtype=np.float32)
        for shard in plan.shards:
            args, windows = shard_args(job, plan, shard, written=(2,))
            s_a = args[0].reshape(shard.rows, n)
            out = (s_a @ b).reshape(-1)
            scatter_windows(assembled, windows[2], out)
        assert np.allclose(assembled.reshape(n, n), reference, atol=1e-5)

    def test_replicated_args_pass_whole(self):
        job = matmul_job(n=16)
        plan = plan_shards(job, {"n0": None, "n1": None})
        args, windows = shard_args(job, plan, plan.shards[0], written=(2,))
        assert args[1] is job.args[1]  # B replicates untouched
        assert windows[1] is None

    def test_halo_widens_read_windows_only(self):
        job = cfd_job(ncells=32)
        plan = plan_shards(job, {"n0": None, "n1": None},
                           distribution=Distribution.block(halo=2))
        shard = plan.shards[1]  # interior boundary on its left
        args, windows = shard_args(job, plan, shard, written=(2,))
        (vlo, _vhi), = windows[0]   # variables: read, widened
        (wlo, _whi), = windows[2]   # step_factors: written, exact
        assert vlo == (shard.spans[0][0] - 2) * 5
        assert wlo == shard.spans[0][0]
