"""Direct tests for the ICD dispatcher: handle caching, lazy
materialisation, and the host-relayed consistency protocol."""

import numpy as np
import pytest

from repro.core import HaoCLSession
from repro.core.icd import HOST
from repro.ocl.errors import CLError

SRC = """
__kernel void inc(__global int* a, int n) {
    int i = get_global_id(0);
    if (i < n) a[i] = a[i] + 1;
}
"""


@pytest.fixture
def sess():
    with HaoCLSession(gpu_nodes=2, mode="real", transport="inproc") as s:
        yield s


class TestHandleCaching:
    def test_node_objects_created_lazily_per_node(self, sess):
        ctx = sess.context()
        prog = sess.program(ctx, SRC)
        icd = sess.cl.icd
        assert not any(k[0] == "program" for k in icd._handles)
        # touching one node materialises only that node's objects
        dev0 = sess.devices[0]
        icd.node_program(prog, dev0.node_id)
        nodes_with_program = {k[2] for k in icd._handles if k[0] == "program"}
        assert nodes_with_program == {dev0.node_id}

    def test_handles_are_cached_not_recreated(self, sess):
        ctx = sess.context()
        prog = sess.program(ctx, SRC)
        icd = sess.cl.icd
        first = icd.node_program(prog, "gpu0")
        second = icd.node_program(prog, "gpu0")
        assert first == second

    def test_forget_drops_all_node_handles(self, sess):
        ctx = sess.context()
        prog = sess.program(ctx, SRC)
        icd = sess.cl.icd
        icd.node_program(prog, "gpu0")
        icd.node_program(prog, "gpu1")
        icd.forget("program", prog.uid)
        assert not any(
            k[0] == "program" and k[1] == prog.uid for k in icd._handles
        )

    def test_context_without_devices_on_node_rejected(self, sess):
        gpu0_only = [d for d in sess.devices if d.node_id == "gpu0"]
        ctx = sess.context(gpu0_only)
        with pytest.raises(CLError):
            sess.cl.icd.node_context(ctx, "gpu1")

    def test_one_queue_per_cluster_device(self, sess):
        ctx = sess.context()
        icd = sess.cl.icd
        q1 = icd.node_queue(ctx, sess.devices[0])
        q2 = icd.node_queue(ctx, sess.devices[0])
        assert q1 == q2


class TestConsistencyProtocol:
    def test_ensure_fresh_is_idempotent(self, sess):
        ctx = sess.context()
        buf = sess.buffer_from(ctx, np.arange(4, dtype=np.int32))
        icd = sess.cl.icd
        device = sess.devices[0]
        icd.ensure_fresh(buf, device)
        sent_once = icd.bytes_to_nodes
        icd.ensure_fresh(buf, device)
        assert icd.bytes_to_nodes == sent_once  # no re-send while fresh

    def test_p2p_migration_between_nodes(self, sess):
        """Data written on node A reaches node B over the peer link --
        one hop, no host relay (the DMP data plane, the default)."""
        ctx = sess.context()
        prog = sess.program(ctx, SRC)
        buf = sess.buffer_from(ctx, np.zeros(4, dtype=np.int32))
        dev0, dev1 = sess.devices
        q0 = sess.queue(ctx, dev0)
        kern = sess.kernel(prog, "inc", buf, np.int32(4))
        sess.cl.enqueue_nd_range_kernel(q0, kern, (4,))
        assert buf.fresh == {dev0.node_id}
        icd = sess.cl.icd
        before_from = icd.bytes_from_nodes
        before_to = icd.bytes_to_nodes
        icd.ensure_fresh(buf, dev1)
        assert icd.bytes_from_nodes == before_from  # no fetch leg
        assert icd.bytes_to_nodes == before_to  # no push leg
        assert icd.dmp_bytes_p2p == buf.size
        assert icd.bytes_host_relayed == 0
        assert HOST not in buf.fresh  # the host never saw the bytes
        assert dev1.node_id in buf.fresh

    def test_host_relay_between_nodes_with_dmp_off(self):
        """With the DMP disabled, migration falls back to the legacy
        owner -> host -> node relay (2 hops)."""
        with HaoCLSession(gpu_nodes=2, mode="real", transport="inproc",
                          dmp=False) as sess:
            ctx = sess.context()
            prog = sess.program(ctx, SRC)
            buf = sess.buffer_from(ctx, np.zeros(4, dtype=np.int32))
            dev0, dev1 = sess.devices
            q0 = sess.queue(ctx, dev0)
            kern = sess.kernel(prog, "inc", buf, np.int32(4))
            sess.cl.enqueue_nd_range_kernel(q0, kern, (4,))
            icd = sess.cl.icd
            before_from = icd.bytes_from_nodes
            before_to = icd.bytes_to_nodes
            icd.ensure_fresh(buf, dev1)
            assert icd.bytes_from_nodes == before_from + buf.size  # fetch leg
            assert icd.bytes_to_nodes == before_to + buf.size  # push leg
            assert icd.bytes_host_relayed == buf.size
            assert icd.dmp_bytes_p2p == 0
            assert HOST in buf.fresh
            assert dev1.node_id in buf.fresh

    def test_transfer_stats_shape(self, sess):
        stats = sess.cl.icd.transfer_stats()
        assert {"bytes_to_nodes", "bytes_from_nodes", "transfers",
                "bytes_host_relayed", "dmp_bytes_p2p", "dmp_dedup_hits",
                "dmp_evictions", "dmp_writebacks"} <= set(stats)
