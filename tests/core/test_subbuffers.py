"""Tests for clCreateSubBuffer: partitioned writes into one output."""

import numpy as np
import pytest

from repro.core import HaoCLSession
from repro.ocl import enums
from repro.ocl.errors import CLError

FILL = """
__kernel void fill(__global int* out, int value, int n) {
    int i = get_global_id(0);
    if (i < n) out[i] = value;
}
__kernel void inc(__global int* a, int n) {
    int i = get_global_id(0);
    if (i < n) a[i] = a[i] + 1;
}
"""


@pytest.fixture
def sess():
    with HaoCLSession(gpu_nodes=2, fpga_nodes=1, mode="real",
                      transport="inproc") as session:
        yield session


class TestSubBufferBasics:
    def test_shares_host_bytes_with_parent(self, sess):
        ctx = sess.context()
        parent = sess.buffer_from(ctx, np.arange(8, dtype=np.int32))
        child = sess.cl.create_sub_buffer(parent, origin=8, size=8)
        assert child.size == 8
        assert np.frombuffer(bytes(child.shadow), dtype=np.int32).tolist() \
            == [2, 3]

    def test_out_of_range_rejected(self, sess):
        ctx = sess.context()
        parent = sess.empty_buffer(ctx, 16)
        with pytest.raises(CLError):
            sess.cl.create_sub_buffer(parent, origin=8, size=16)

    def test_nested_sub_buffer_rejected(self, sess):
        ctx = sess.context()
        parent = sess.empty_buffer(ctx, 16)
        child = sess.cl.create_sub_buffer(parent, origin=0, size=8)
        with pytest.raises(CLError):
            sess.cl.create_sub_buffer(child, origin=0, size=4)

    def test_host_write_to_child_visible_in_parent(self, sess):
        ctx = sess.context()
        parent = sess.buffer_from(ctx, np.zeros(4, dtype=np.int32))
        child = sess.cl.create_sub_buffer(parent, origin=4, size=4)
        queue = sess.queue(ctx, sess.devices[0])
        sess.cl.enqueue_write_buffer(queue, child,
                                     np.array([7], dtype=np.int32))
        out = sess.read_array(queue, parent, np.int32)
        assert out.tolist() == [0, 7, 0, 0]


class TestPartitionedOutput:
    def test_disjoint_slices_written_on_different_nodes(self, sess):
        """The pattern sub-buffers exist for: one logical output, each
        node writing its own region, gathered by a single parent read."""
        ctx = sess.context()
        prog = sess.program(ctx, FILL)
        n_total = 12
        parent = sess.empty_buffer(ctx, n_total * 4)
        per = n_total // 3
        for index, device in enumerate(sess.devices):
            child = sess.cl.create_sub_buffer(parent, origin=index * per * 4,
                                              size=per * 4)
            queue = sess.queue(ctx, device)
            kernel = sess.kernel(prog, "fill", child,
                                 np.int32(index + 1), np.int32(per))
            sess.cl.enqueue_nd_range_kernel(queue, kernel, (per,))
        queue = sess.queue(ctx, sess.devices[0])
        out = sess.read_array(queue, parent, np.int32)
        assert out.tolist() == [1] * per + [2] * per + [3] * per

    def test_child_then_parent_kernel(self, sess):
        """Write a region remotely, then run a kernel over the whole
        parent: the region must be gathered before the parent ships."""
        ctx = sess.context()
        prog = sess.program(ctx, FILL)
        parent = sess.buffer_from(ctx, np.zeros(8, dtype=np.int32))
        child = sess.cl.create_sub_buffer(parent, origin=16, size=16)
        q0 = sess.queue(ctx, sess.devices[0])
        q1 = sess.queue(ctx, sess.devices[1])
        fill = sess.kernel(prog, "fill", child, np.int32(5), np.int32(4))
        sess.cl.enqueue_nd_range_kernel(q1, fill, (4,))
        inc = sess.kernel(prog, "inc", parent, np.int32(8))
        sess.cl.enqueue_nd_range_kernel(q0, inc, (8,))
        out = sess.read_array(q0, parent, np.int32)
        assert out.tolist() == [1, 1, 1, 1, 6, 6, 6, 6]

    def test_parent_write_invalidates_children(self, sess):
        ctx = sess.context()
        prog = sess.program(ctx, FILL)
        parent = sess.buffer_from(ctx, np.zeros(8, dtype=np.int32))
        child = sess.cl.create_sub_buffer(parent, origin=0, size=16)
        q0 = sess.queue(ctx, sess.devices[0])
        q1 = sess.queue(ctx, sess.devices[1])
        # parent-wide fill on node 0
        fill = sess.kernel(prog, "fill", parent, np.int32(9), np.int32(8))
        sess.cl.enqueue_nd_range_kernel(q0, fill, (8,))
        # child kernel on node 1 must observe the parent's new contents
        inc = sess.kernel(prog, "inc", child, np.int32(4))
        sess.cl.enqueue_nd_range_kernel(q1, inc, (4,))
        out = sess.read_array(q1, parent, np.int32)
        assert out.tolist() == [10, 10, 10, 10, 9, 9, 9, 9]

    def test_flat_api_entry_point(self, sess):
        from repro.core import api as cl

        cl.set_current(sess.cl)
        ctx = sess.context()
        parent = sess.empty_buffer(ctx, 32)
        child = cl.clCreateSubBuffer(parent, enums.CL_MEM_READ_WRITE, 8, 16)
        assert child.origin == 8
        assert child.size == 16
