"""Tests for the wrapper lib: cluster objects, consistency, scheduling."""

import numpy as np
import pytest

from repro.core import HaoCLSession
from repro.core.icd import HOST
from repro.ocl import enums
from repro.ocl.errors import CLError

VADD = """
__kernel void vadd(__global const float* a, __global const float* b,
                   __global float* c, int n) {
    int i = get_global_id(0);
    if (i < n) c[i] = a[i] + b[i];
}
"""

INPLACE = """
__kernel void inc(__global int* a, int n) {
    int i = get_global_id(0);
    if (i < n) a[i] = a[i] + 1;
}
"""


@pytest.fixture
def sess():
    with HaoCLSession(gpu_nodes=2, fpga_nodes=1, mode="real",
                      transport="inproc") as session:
        yield session


class TestDiscovery:
    def test_single_platform(self, sess):
        (platform,) = sess.cl.get_platforms()
        assert platform.name == "HaoCL"
        assert len(platform.devices) == 3

    def test_device_type_filter(self, sess):
        gpus = sess.cl.get_devices(enums.CL_DEVICE_TYPE_GPU)
        assert len(gpus) == 2
        fpgas = sess.cl.get_devices(enums.CL_DEVICE_TYPE_ACCELERATOR)
        assert len(fpgas) == 1

    def test_devices_carry_node_mapping(self, sess):
        nodes = {d.node_id for d in sess.devices}
        assert nodes == {"gpu0", "gpu1", "fpga0"}


class TestExecution:
    def test_vadd_on_each_device(self, sess):
        ctx = sess.context()
        prog = sess.program(ctx, VADD)
        a = np.arange(16, dtype=np.float32)
        b = np.full(16, 10, dtype=np.float32)
        for device in sess.devices:
            q = sess.queue(ctx, device)
            buf_a = sess.buffer_from(ctx, a)
            buf_b = sess.buffer_from(ctx, b)
            buf_c = sess.empty_buffer(ctx, 64)
            kern = sess.kernel(prog, "vadd", buf_a, buf_b, buf_c, np.int32(16))
            sess.cl.enqueue_nd_range_kernel(q, kern, (16,))
            out = sess.read_array(q, buf_c, np.float32)
            assert np.allclose(out, a + b), device

    def test_unset_arg_rejected(self, sess):
        ctx = sess.context()
        prog = sess.program(ctx, VADD)
        kern = sess.cl.create_kernel(prog, "vadd")
        q = sess.queue(ctx, sess.devices[0])
        with pytest.raises(CLError) as err:
            sess.cl.enqueue_nd_range_kernel(q, kern, (4,))
        assert err.value.code == enums.CL_INVALID_KERNEL_ARGS

    def test_build_failure_raises(self, sess):
        ctx = sess.context()
        with pytest.raises(CLError) as err:
            sess.program(ctx, "__kernel void broken( {")
        assert err.value.code == enums.CL_BUILD_PROGRAM_FAILURE

    def test_global_offset_partitioning(self, sess):
        ctx = sess.context()
        prog = sess.program(ctx, INPLACE)
        device = sess.devices[0]
        q = sess.queue(ctx, device)
        buf = sess.buffer_from(ctx, np.zeros(8, dtype=np.int32))
        kern = sess.kernel(prog, "inc", buf, np.int32(8))
        sess.cl.enqueue_nd_range_kernel(q, kern, (4,), None, (4,))
        out = sess.read_array(q, buf, np.int32)
        assert list(out) == [0, 0, 0, 0, 1, 1, 1, 1]


class TestConsistency:
    def test_written_buffer_migrates_ownership(self, sess):
        ctx = sess.context()
        prog = sess.program(ctx, INPLACE)
        buf = sess.buffer_from(ctx, np.zeros(4, dtype=np.int32))
        dev0 = sess.devices[0]
        q = sess.queue(ctx, dev0)
        kern = sess.kernel(prog, "inc", buf, np.int32(4))
        sess.cl.enqueue_nd_range_kernel(q, kern, (4,))
        assert buf.fresh == {dev0.node_id}

    def test_read_only_buffers_replicate(self, sess):
        ctx = sess.context()
        prog = sess.program(ctx, VADD)
        a = sess.buffer_from(ctx, np.ones(4, dtype=np.float32))
        b = sess.buffer_from(ctx, np.ones(4, dtype=np.float32))
        for device in sess.devices[:2]:
            q = sess.queue(ctx, device)
            c = sess.empty_buffer(ctx, 16)
            kern = sess.kernel(prog, "vadd", a, b, c, np.int32(4))
            sess.cl.enqueue_nd_range_kernel(q, kern, (4,))
        # read-only inputs stay fresh everywhere they have been
        assert HOST in a.fresh
        assert len(a.fresh) == 3  # host + both gpu nodes

    def test_chained_kernels_across_nodes(self, sess):
        """inc on node0, then inc on node1: data must migrate."""
        ctx = sess.context()
        prog = sess.program(ctx, INPLACE)
        buf = sess.buffer_from(ctx, np.zeros(4, dtype=np.int32))
        dev0, dev1 = sess.devices[0], sess.devices[1]
        q0, q1 = sess.queue(ctx, dev0), sess.queue(ctx, dev1)
        k0 = sess.kernel(prog, "inc", buf, np.int32(4))
        sess.cl.enqueue_nd_range_kernel(q0, k0, (4,))
        k1 = sess.kernel(prog, "inc", buf, np.int32(4))
        sess.cl.enqueue_nd_range_kernel(q1, k1, (4,))
        out = sess.read_array(q1, buf, np.int32)
        assert list(out) == [2, 2, 2, 2]

    def test_host_write_invalidates_replicas(self, sess):
        ctx = sess.context()
        prog = sess.program(ctx, INPLACE)
        buf = sess.buffer_from(ctx, np.zeros(4, dtype=np.int32))
        dev0 = sess.devices[0]
        q = sess.queue(ctx, dev0)
        kern = sess.kernel(prog, "inc", buf, np.int32(4))
        sess.cl.enqueue_nd_range_kernel(q, kern, (4,))
        sess.cl.enqueue_write_buffer(q, buf, np.full(4, 7, dtype=np.int32))
        sess.cl.enqueue_nd_range_kernel(q, kern, (4,))
        out = sess.read_array(q, buf, np.int32)
        assert list(out) == [8, 8, 8, 8]

    def test_write_only_output_not_uploaded(self, sess):
        ctx = sess.context()
        prog = sess.program(ctx, VADD)
        device = sess.devices[0]
        q = sess.queue(ctx, device)
        a = sess.buffer_from(ctx, np.ones(4, dtype=np.float32))
        b = sess.buffer_from(ctx, np.ones(4, dtype=np.float32))
        c = sess.empty_buffer(ctx, 16)
        before = sess.cl.icd.bytes_to_nodes
        kern = sess.kernel(prog, "vadd", a, b, c, np.int32(4))
        sess.cl.enqueue_nd_range_kernel(q, kern, (4,))
        uploaded = sess.cl.icd.bytes_to_nodes - before
        assert uploaded == a.size + b.size  # c not shipped


class TestScheduling:
    def test_user_directed_stays_on_queue_device(self, sess):
        ctx = sess.context()
        prog = sess.program(ctx, VADD)
        target = sess.devices[1]
        q = sess.queue(ctx, target)
        a = sess.buffer_from(ctx, np.ones(4, dtype=np.float32))
        b = sess.buffer_from(ctx, np.ones(4, dtype=np.float32))
        c = sess.empty_buffer(ctx, 16)
        kern = sess.kernel(prog, "vadd", a, b, c, np.int32(4))
        event = sess.cl.enqueue_nd_range_kernel(q, kern, (4,))
        assert event.device is target

    def test_round_robin_spreads_across_devices(self, sess):
        sess.cl.set_policy("round-robin")
        ctx = sess.context()
        prog = sess.program(ctx, VADD)
        q = sess.queue(ctx, sess.devices[0])
        used = set()
        for _ in range(3):
            a = sess.buffer_from(ctx, np.ones(4, dtype=np.float32))
            b = sess.buffer_from(ctx, np.ones(4, dtype=np.float32))
            c = sess.empty_buffer(ctx, 16)
            kern = sess.kernel(prog, "vadd", a, b, c, np.int32(4))
            event = sess.cl.enqueue_nd_range_kernel(q, kern, (4,))
            used.add(event.device.global_id)
        assert len(used) == 3

    def test_policy_swap_at_runtime(self, sess):
        sess.cl.set_policy("load-aware")
        assert sess.cl.policy.name == "load-aware"
        sess.cl.set_policy("user-directed")
        assert sess.cl.policy.name == "user-directed"

    def test_finish_drains_touched_devices(self, sess):
        sess.cl.set_policy("round-robin")
        ctx = sess.context()
        prog = sess.program(ctx, VADD)
        q = sess.queue(ctx, sess.devices[0])
        for _ in range(3):
            a = sess.buffer_from(ctx, np.ones(4, dtype=np.float32))
            b = sess.buffer_from(ctx, np.ones(4, dtype=np.float32))
            c = sess.empty_buffer(ctx, 16)
            kern = sess.kernel(prog, "vadd", a, b, c, np.int32(4))
            sess.cl.enqueue_nd_range_kernel(q, kern, (4,))
        assert len(q.touched) == 3
        sess.cl.finish(q)  # must not raise

    def test_stats_structure(self, sess):
        stats = sess.stats()
        assert "_host" in stats
        assert "gpu0" in stats
        assert "transfers" in stats["_host"]


class TestSimulatedSession:
    def test_synthetic_pipeline_end_to_end(self):
        with HaoCLSession(gpu_nodes=2, mode="modeled",
                          transport="sim") as sess:
            ctx = sess.context()
            prog = sess.program(ctx, VADD)
            device = sess.devices[0]
            q = sess.queue(ctx, device)
            n = 50_000_000  # 200MB per buffer: impossible to hold for real
            a = sess.synthetic_buffer(ctx, n * 4)
            b = sess.synthetic_buffer(ctx, n * 4)
            c = sess.synthetic_buffer(ctx, n * 4)
            sess.cl.enqueue_write_buffer(q, a, nbytes=n * 4)
            sess.cl.enqueue_write_buffer(q, b, nbytes=n * 4)
            kern = sess.kernel(prog, "vadd", a, b, c, np.int32(n))
            sess.cl.enqueue_nd_range_kernel(q, kern, (n,))
            sess.cl.finish(q)
            elapsed = sess.now_s()
            # 400MB over GbE is ~3.4s; the simulated clock must show it
            assert elapsed > 3.0

    def test_modeled_faster_with_two_nodes(self):
        def run(nodes):
            with HaoCLSession(gpu_nodes=nodes, mode="modeled",
                              transport="sim") as sess:
                ctx = sess.context()
                prog = sess.program(ctx, INPLACE)
                n = 40_000_000
                per = n // nodes
                queues = []
                for device in sess.devices:
                    q = sess.queue(ctx, device)
                    buf = sess.synthetic_buffer(ctx, per * 4)
                    kern = sess.kernel(prog, "inc", buf, np.int32(per))
                    sess.cl.enqueue_nd_range_kernel(q, kern, (per,))
                    queues.append(q)
                for q in queues:
                    sess.cl.finish(q)
                return sess.now_s()

        t1, t2 = run(1), run(2)
        assert t2 < t1
