"""Tests for the throughput-weighted automatic partitioner."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clc.analysis import ResolvedCost
from repro.cluster.registry import DeviceRegistry
from repro.core.autopart import (
    device_weights,
    partition_by_throughput,
    weighted_ranges,
)
from repro.core.scheduler import Profiler


def make_mixed_devices():
    registry = DeviceRegistry()
    gpu = registry.register("gpu0", 1, 4, "GPU", {})
    fpga = registry.register("fpga0", 1, 8, "FPGA", {})
    cpu = registry.register("cpu0", 1, 2, "CPU", {})
    return gpu, fpga, cpu


def dense_cost():
    return ResolvedCost(flops=500.0, int_ops=10.0, global_read_bytes=8.0,
                        global_write_bytes=4.0, local_bytes=0.0, barriers=0.0)


class TestWeightedRanges:
    def test_equal_weights_split_evenly(self):
        assert weighted_ranges(10, [1, 1]) == [(0, 5), (5, 5)]

    def test_proportional_split(self):
        ranges = weighted_ranges(100, [3, 1])
        assert ranges == [(0, 75), (75, 25)]

    def test_counts_sum_exactly(self):
        ranges = weighted_ranges(10, [1, 1, 1])
        assert sum(count for _s, count in ranges) == 10

    def test_zero_weight_device_gets_nothing(self):
        ranges = weighted_ranges(10, [1, 0])
        assert ranges[1][1] == 0

    def test_invalid_weights(self):
        with pytest.raises(ValueError):
            weighted_ranges(10, [])
        with pytest.raises(ValueError):
            weighted_ranges(10, [-1, 2])
        with pytest.raises(ValueError):
            weighted_ranges(10, [0, 0])

    #: weights including exact zeros (dead devices), as the elastic
    #: cluster produces them; at least one weight must be positive
    weight_lists = st.lists(
        st.one_of(st.just(0.0),
                  st.floats(min_value=0.01, max_value=100)),
        min_size=1, max_size=8,
    ).filter(lambda ws: any(w > 0 for w in ws))

    @given(st.integers(0, 10_000), weight_lists)
    @settings(max_examples=100, deadline=None)
    def test_ranges_are_exact_partition(self, total, weights):
        """Exact cover: counts sum to the total, ranges are contiguous
        and order-preserving, no work is dropped or duplicated."""
        ranges = weighted_ranges(total, weights)
        assert sum(count for _s, count in ranges) == total
        position = 0
        for start, count in ranges:
            assert start == position
            assert count >= 0
            position += count

    @given(st.integers(0, 10_000), weight_lists)
    @settings(max_examples=100, deadline=None)
    def test_zero_weight_never_gets_work(self, total, weights):
        """A zero-weight entry (a dead or excluded device) must get an
        empty range even when remainder items are being distributed."""
        ranges = weighted_ranges(total, weights)
        for weight, (_start, count) in zip(weights, ranges):
            if weight == 0:
                assert count == 0

    @given(st.integers(0, 10_000), weight_lists)
    @settings(max_examples=100, deadline=None)
    def test_split_is_deterministic(self, total, weights):
        """Same inputs, same split -- replay and planning rely on it."""
        assert weighted_ranges(total, weights) == weighted_ranges(
            total, weights)

    @given(st.integers(100, 10_000))
    @settings(max_examples=50, deadline=None)
    def test_dominant_weight_dominates(self, total):
        ranges = weighted_ranges(total, [9, 1])
        assert ranges[0][1] > 7 * ranges[1][1] * 0.9

    def test_remainder_tie_break_prefers_lower_index(self):
        # equal remainders everywhere: the extra items must land on the
        # lowest indices, deterministically
        assert weighted_ranges(5, [1, 1, 1]) == [(0, 2), (2, 2), (4, 1)]


class TestDeviceWeights:
    def test_gpu_outweighs_cpu_on_dense_compute(self):
        gpu, fpga, cpu = make_mixed_devices()
        weights = device_weights([gpu, cpu], cost=dense_cost())
        assert weights[0] > weights[1]

    def test_weights_normalised(self):
        devices = make_mixed_devices()
        weights = device_weights(list(devices), cost=dense_cost())
        assert sum(weights) == pytest.approx(1.0)

    def test_profiler_overrides_static_model(self):
        gpu, fpga, _cpu = make_mixed_devices()
        profiler = Profiler(min_samples=1)
        # teach: FPGA is 10x faster than GPU for this kernel
        profiler.record("k", "GPU", 10.0, 1_000_000)
        profiler.record("k", "FPGA", 1.0, 1_000_000)
        weights = device_weights([gpu, fpga], cost=dense_cost(),
                                 profiler=profiler, kernel_name="k")
        assert weights[1] > weights[0]

    def test_partition_by_throughput_end_to_end(self):
        gpu, fpga, cpu = make_mixed_devices()
        ranges = partition_by_throughput(1000, [gpu, fpga, cpu],
                                         cost=dense_cost())
        assert sum(count for _s, count in ranges) == 1000
        # GPU (5.5 TFLOPS) must get the largest share of dense work
        assert ranges[0][1] == max(count for _s, count in ranges)


class TestWeightedDistributedRun:
    def test_weighted_matmul_correct_on_hybrid_cluster(self):
        """A weighted split must still produce the right product."""
        from repro.core import HaoCLSession
        from repro.workloads import get_workload

        workload = get_workload("matrixmul")
        n = 24
        inputs = workload.generate(n, seed=17)
        with HaoCLSession(gpu_nodes=1, fpga_nodes=1, cpu_nodes=1,
                          mode="real", transport="inproc") as session:
            devices = session.devices
            cost = ResolvedCost(flops=2.0 * n, int_ops=6.0 * n,
                                global_read_bytes=8.0 * n,
                                global_write_bytes=4.0,
                                local_bytes=0.0, barriers=0.0)
            ranges = partition_by_throughput(n, devices, cost=cost)
            ctx = session.context(devices)
            prog = session.program(ctx, workload.source)
            pieces = []
            for (start, count), device in zip(ranges, devices):
                if count == 0:
                    continue
                queue = session.queue(ctx, device)
                buf_a = session.buffer_from(ctx,
                                            inputs["A"][start:start + count])
                buf_b = session.buffer_from(ctx, inputs["B"])
                buf_c = session.empty_buffer(ctx, count * n * 4)
                kernel = session.kernel(prog, "matmul", buf_a, buf_b, buf_c,
                                        np.int32(n), np.int32(count))
                session.enqueue(queue, kernel, (n, count))
                pieces.append((queue, buf_c, start, count))
            result = np.zeros((n, n), dtype=np.float32)
            for queue, buf, start, count in pieces:
                result[start:start + count] = session.read_array(
                    queue, buf, np.float32, (count, n)
                )
        assert workload.validate(result, workload.reference(inputs))
