"""Tests for the scheduling policies, plugin registry and profiler."""

import pytest

from repro.clc.analysis import ResolvedCost
from repro.cluster.registry import DeviceRegistry
from repro.core.scheduler import (
    Profiler,
    SchedulingPolicy,
    TaskContext,
    create_policy,
    policy_names,
    register_policy,
)
from repro.transport.netmodel import GigabitEthernet


def make_devices():
    reg = DeviceRegistry()
    gpu0 = reg.register("gpu0", 1, 4, "GPU", {"name": "P4"})
    gpu1 = reg.register("gpu1", 1, 4, "GPU", {"name": "P4"})
    fpga0 = reg.register("fpga0", 1, 8, "FPGA", {"name": "VU9P"})
    cpu0 = reg.register("cpu0", 1, 2, "CPU", {"name": "Xeon"})
    return gpu0, gpu1, fpga0, cpu0


def make_task(devices, queue_device=None, cost=None, items=1_000_000,
              stale=None, ready=None):
    return TaskContext(
        kernel_name="k",
        num_work_items=items,
        cost=cost,
        queue_device=queue_device or devices[0],
        candidates=list(devices),
        stale_bytes=stale or {},
        device_ready_s=ready or {},
    )


def dense_cost():
    return ResolvedCost(flops=2000.0, int_ops=10.0, global_read_bytes=8.0,
                        global_write_bytes=4.0, local_bytes=0.0, barriers=0.0)


def irregular_cost():
    return ResolvedCost(flops=0.0, int_ops=60.0, global_read_bytes=16.0,
                        global_write_bytes=4.0, local_bytes=0.0, barriers=0.0)


class TestRegistry:
    def test_builtins_registered(self):
        names = policy_names()
        for expected in ("user-directed", "round-robin", "load-aware",
                         "locality-aware", "hetero-aware", "power-aware"):
            assert expected in names

    def test_unknown_policy(self):
        with pytest.raises(ValueError):
            create_policy("quantum")

    def test_custom_policy_plugin(self):
        @register_policy("always-last-test")
        class AlwaysLast(SchedulingPolicy):
            def select(self, task):
                return task.candidates[-1]

        devices = make_devices()
        policy = create_policy("always-last-test")
        assert policy.select(make_task(devices)) is devices[-1]

    def test_non_policy_class_rejected(self):
        with pytest.raises(TypeError):
            register_policy("bad")(object)


class TestUserDirected:
    def test_honours_queue_device(self):
        devices = make_devices()
        policy = create_policy("user-directed")
        task = make_task(devices, queue_device=devices[2])
        assert policy.select(task) is devices[2]


class TestRoundRobin:
    def test_cycles(self):
        devices = make_devices()
        policy = create_policy("round-robin")
        picks = [policy.select(make_task(devices)) for _ in range(8)]
        assert picks[:4] == list(devices)
        assert picks[4:] == list(devices)


class TestLoadAware:
    def test_prefers_idle_device(self):
        devices = make_devices()
        policy = create_policy("load-aware")
        ready = {devices[0].global_id: 5.0, devices[1].global_id: 0.1,
                 devices[2].global_id: 9.0, devices[3].global_id: 2.0}
        assert policy.select(make_task(devices, ready=ready)) is devices[1]

    def test_ties_break_deterministically(self):
        devices = make_devices()
        policy = create_policy("load-aware")
        assert policy.select(make_task(devices)) is devices[0]


class TestLocalityAware:
    def test_prefers_node_with_data(self):
        devices = make_devices()
        policy = create_policy("locality-aware")
        stale = {devices[0].global_id: 1 << 30, devices[1].global_id: 0,
                 devices[2].global_id: 1 << 30, devices[3].global_id: 1 << 30}
        assert policy.select(make_task(devices, stale=stale)) is devices[1]


class TestHeteroAware:
    def test_dense_compute_goes_to_gpu(self):
        devices = make_devices()
        policy = create_policy("hetero-aware")
        task = make_task(devices, cost=dense_cost())
        assert policy.select(task).type_name == "GPU"

    def test_irregular_avoids_fpga(self):
        devices = make_devices()
        policy = create_policy("hetero-aware")
        task = make_task(devices, cost=irregular_cost())
        assert policy.select(task).type_name != "FPGA"

    def test_transfer_cost_can_flip_decision(self):
        devices = make_devices()
        gpu0, gpu1 = devices[0], devices[1]
        policy = create_policy("hetero-aware",
                               netmodel=GigabitEthernet())
        # gpu0 needs a 1GB transfer; gpu1 has the data
        stale = {gpu0.global_id: 1 << 30, gpu1.global_id: 0,
                 devices[2].global_id: 1 << 30, devices[3].global_id: 1 << 30}
        task = make_task(devices, cost=dense_cost(), stale=stale)
        assert policy.select(task) is gpu1

    def test_load_spreads_queued_work(self):
        devices = make_devices()
        policy = create_policy("hetero-aware")
        ready = {devices[0].global_id: 100.0}
        task = make_task(devices, cost=dense_cost(), ready=ready)
        assert policy.select(task) is not devices[0]

    def test_profiler_feedback_overrides_static_model(self):
        devices = make_devices()
        profiler = Profiler(min_samples=1)
        policy = create_policy("hetero-aware", profiler=profiler)
        # teach it that GPU is pathologically slow for this kernel
        profiler.record("k", "GPU", duration_s=100.0, items=1_000_000)
        profiler.record("k", "CPU", duration_s=0.001, items=1_000_000)
        profiler.record("k", "FPGA", duration_s=50.0, items=1_000_000)
        task = make_task(devices, cost=dense_cost())
        assert policy.select(task).type_name == "CPU"

    def test_observe_feeds_profiler(self):
        devices = make_devices()
        profiler = Profiler()
        policy = create_policy("hetero-aware", profiler=profiler)
        task = make_task(devices, cost=dense_cost())
        device = policy.select(task)
        policy.observe(task, device, 0.25)
        assert profiler.estimate("k", device.type_name, task.num_work_items) \
            == pytest.approx(0.25)


class TestPowerAware:
    def test_prefers_fpga_when_within_slack(self):
        devices = make_devices()
        policy = create_policy("power-aware", slack=1000.0)
        task = make_task(devices, cost=dense_cost())
        # with huge slack, lowest-energy candidate wins: FPGA is low power
        assert policy.select(task).type_name == "FPGA"

    def test_tight_slack_behaves_like_hetero(self):
        devices = make_devices()
        power = create_policy("power-aware", slack=1.0)
        hetero = create_policy("hetero-aware")
        task = make_task(devices, cost=dense_cost())
        assert power.select(task) is hetero.select(task)

    def test_bad_slack_rejected(self):
        with pytest.raises(ValueError):
            create_policy("power-aware", slack=0.5)


class TestProfiler:
    def test_estimate_requires_samples(self):
        profiler = Profiler(min_samples=2)
        profiler.record("k", "GPU", 1.0, 100)
        assert profiler.estimate("k", "GPU", 100) is None
        profiler.record("k", "GPU", 1.0, 100)
        assert profiler.estimate("k", "GPU", 100) == pytest.approx(1.0)

    def test_estimate_scales_with_items(self):
        profiler = Profiler()
        profiler.record("k", "GPU", 1.0, 1000)
        assert profiler.estimate("k", "GPU", 2000) == pytest.approx(2.0)

    def test_ewma_tracks_drift(self):
        profiler = Profiler(alpha=0.5)
        profiler.record("k", "GPU", 1.0, 1000)
        profiler.record("k", "GPU", 3.0, 1000)
        assert profiler.estimate("k", "GPU", 1000) == pytest.approx(2.0)

    def test_zero_items_ignored(self):
        profiler = Profiler()
        profiler.record("k", "GPU", 1.0, 0)
        assert profiler.estimate("k", "GPU", 10) is None

    def test_snapshot(self):
        profiler = Profiler()
        profiler.record("a", "GPU", 1.0, 10)
        profiler.record("b", "FPGA", 2.0, 10)
        snap = profiler.snapshot()
        assert ("a", "GPU") in snap
        assert profiler.known_kernels() == ["a", "b"]
