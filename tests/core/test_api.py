"""Tests for the flat clXxx compatibility API."""

import numpy as np
import pytest

from repro.core import HaoCLSession
from repro.core import api as cl
from repro.ocl.errors import CLError

SRC = """
#define BS 2
__kernel void saxpy(__global const float* x, __global float* y,
                    float a, int n) {
    int i = get_global_id(0);
    if (i < n) y[i] = a * x[i] + y[i];
}
__kernel void reverse4(__global int* d) {
    __local int tile[4];
    int lid = get_local_id(0);
    tile[lid] = d[get_global_id(0)];
    barrier(CLK_LOCAL_MEM_FENCE);
    d[get_global_id(0)] = tile[3 - lid];
}
"""


@pytest.fixture
def driver():
    with HaoCLSession(gpu_nodes=1, cpu_nodes=1, mode="real",
                      transport="inproc") as sess:
        cl.set_current(sess.cl)
        yield sess.cl


class TestPlatformAPI:
    def test_get_platform_ids(self, driver):
        platforms = cl.clGetPlatformIDs()
        assert len(platforms) == 1
        name = cl.clGetPlatformInfo(platforms[0], cl.CL_PLATFORM_NAME)
        assert name == "HaoCL"

    def test_get_device_ids_all(self, driver):
        devices = cl.clGetDeviceIDs(cl.clGetPlatformIDs()[0])
        assert len(devices) == 2

    def test_get_device_ids_filtered(self, driver):
        platform = cl.clGetPlatformIDs()[0]
        gpus = cl.clGetDeviceIDs(platform, cl.CL_DEVICE_TYPE_GPU)
        assert len(gpus) == 1
        assert cl.clGetDeviceInfo(gpus[0], cl.CL_DEVICE_NAME) == "NVIDIA Tesla P4"

    def test_no_current_driver_is_error(self):
        cl.set_current(None)
        with pytest.raises(CLError):
            cl.clGetPlatformIDs()


class TestFullProgramFlow:
    def test_saxpy_like_a_real_opencl_host(self, driver):
        """The canonical OpenCL host program, line for line."""
        platform = cl.clGetPlatformIDs()[0]
        devices = cl.clGetDeviceIDs(platform, cl.CL_DEVICE_TYPE_GPU)
        context = cl.clCreateContext(devices)
        queue = cl.clCreateCommandQueue(context, devices[0])

        n = 32
        x = np.arange(n, dtype=np.float32)
        y = np.ones(n, dtype=np.float32)
        buf_x = cl.clCreateBuffer(context, cl.CL_MEM_READ_ONLY, n * 4, x)
        buf_y = cl.clCreateBuffer(context, cl.CL_MEM_READ_WRITE, n * 4, y)

        program = cl.clCreateProgramWithSource(context, SRC)
        assert cl.clBuildProgram(program, "-DCLK_LOCAL_MEM_FENCE=1") == cl.CL_SUCCESS
        kernel = cl.clCreateKernel(program, "saxpy")
        cl.clSetKernelArg(kernel, 0, buf_x)
        cl.clSetKernelArg(kernel, 1, buf_y)
        cl.clSetKernelArg(kernel, 2, np.float32(2.0))
        cl.clSetKernelArg(kernel, 3, np.int32(n))
        event = cl.clEnqueueNDRangeKernel(queue, kernel, 1, None, (n,))
        assert cl.clFinish(queue) == cl.CL_SUCCESS
        out = cl.clEnqueueReadBuffer(queue, buf_y, True, 0)
        result = np.frombuffer(bytes(out), dtype=np.float32)
        assert np.allclose(result, 2.0 * x + 1.0)
        end = cl.clGetEventProfilingInfo(event, cl.CL_PROFILING_COMMAND_END)
        assert end >= 0
        assert cl.clWaitForEvents([event]) == cl.CL_SUCCESS
        cl.clReleaseKernel(kernel)
        cl.clReleaseProgram(program)
        cl.clReleaseMemObject(buf_x)
        cl.clReleaseCommandQueue(queue)
        cl.clReleaseContext(context)

    def test_barrier_kernel_with_explicit_local_size(self, driver):
        platform = cl.clGetPlatformIDs()[0]
        devices = cl.clGetDeviceIDs(platform)
        context = cl.clCreateContext(devices)
        queue = cl.clCreateCommandQueue(context, devices[0])
        data = np.arange(8, dtype=np.int32)
        buf = cl.clCreateBuffer(context, cl.CL_MEM_READ_WRITE, 32, data)
        program = cl.clCreateProgramWithSource(context, SRC)
        cl.clBuildProgram(program, "-DCLK_LOCAL_MEM_FENCE=1")
        kernel = cl.clCreateKernel(program, "reverse4")
        cl.clSetKernelArg(kernel, 0, buf)
        cl.clEnqueueNDRangeKernel(queue, kernel, 1, None, (8,), (4,))
        out = np.frombuffer(bytes(cl.clEnqueueReadBuffer(queue, buf, True, 0)),
                            dtype=np.int32)
        assert list(out) == [3, 2, 1, 0, 7, 6, 5, 4]

    def test_work_dim_mismatch_rejected(self, driver):
        platform = cl.clGetPlatformIDs()[0]
        devices = cl.clGetDeviceIDs(platform)
        context = cl.clCreateContext(devices)
        queue = cl.clCreateCommandQueue(context, devices[0])
        program = cl.clCreateProgramWithSource(context, SRC)
        cl.clBuildProgram(program, "-DCLK_LOCAL_MEM_FENCE=1")
        kernel = cl.clCreateKernel(program, "saxpy")
        with pytest.raises(CLError):
            cl.clEnqueueNDRangeKernel(queue, kernel, 2, None, (8,))

    def test_build_info_after_failure(self, driver):
        platform = cl.clGetPlatformIDs()[0]
        devices = cl.clGetDeviceIDs(platform)
        context = cl.clCreateContext(devices)
        program = cl.clCreateProgramWithSource(context, "__kernel broken")
        with pytest.raises(CLError):
            cl.clBuildProgram(program)
        log = cl.clGetProgramBuildInfo(program, devices[0],
                                       cl.CL_PROGRAM_BUILD_LOG)
        assert log

    def test_synthetic_flag_extension(self, driver):
        platform = cl.clGetPlatformIDs()[0]
        devices = cl.clGetDeviceIDs(platform)
        context = cl.clCreateContext(devices)
        buf = cl.clCreateBuffer(context,
                                cl.CL_MEM_READ_WRITE | cl.CL_MEM_SYNTHETIC_HAOCL,
                                1 << 30)
        assert buf.synthetic

    def test_copy_buffer(self, driver):
        platform = cl.clGetPlatformIDs()[0]
        devices = cl.clGetDeviceIDs(platform)
        context = cl.clCreateContext(devices)
        queue = cl.clCreateCommandQueue(context, devices[0])
        src = cl.clCreateBuffer(context, cl.CL_MEM_READ_WRITE, 16,
                                np.arange(4, dtype=np.int32))
        dst = cl.clCreateBuffer(context, cl.CL_MEM_READ_WRITE, 16)
        cl.clEnqueueCopyBuffer(queue, src, dst)
        out = np.frombuffer(bytes(cl.clEnqueueReadBuffer(queue, dst, True, 0)),
                            dtype=np.int32)
        assert list(out) == [0, 1, 2, 3]


class TestTenancyAPI:
    def test_device_lease_lifecycle(self, driver):
        from repro.core.tenancy import DeviceLease, try_acquire

        devices = driver.get_devices()
        with DeviceLease(driver, "alice", devices, shared=False):
            assert try_acquire(driver, "bob", devices, shared=False) is None
        lease = try_acquire(driver, "bob", devices, shared=False)
        assert lease is not None
        lease.release()

    def test_failed_acquire_rolls_back(self, driver):
        from repro.core.tenancy import DeviceLease, try_acquire

        devices = driver.get_devices()
        # alice takes only the second device
        with DeviceLease(driver, "alice", devices[1:], shared=False):
            # bob tries to take both: must fail AND not hold the first
            assert try_acquire(driver, "bob", devices, shared=False) is None
            carol = try_acquire(driver, "carol", devices[:1], shared=False)
            assert carol is not None
            carol.release()
