"""Unit and property tests for the wire format."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays as np_arrays

from repro.transport.serialization import SerializationError, decode, encode


def roundtrip(value):
    return decode(encode(value))


class TestScalars:
    def test_none(self):
        assert roundtrip(None) is None

    def test_bools(self):
        assert roundtrip(True) is True
        assert roundtrip(False) is False

    def test_small_ints(self):
        for value in (0, 1, -1, 2**62, -(2**62)):
            assert roundtrip(value) == value

    def test_big_ints(self):
        for value in (2**64, -(2**100), 10**30):
            assert roundtrip(value) == value

    def test_floats(self):
        assert roundtrip(3.25) == 3.25
        assert roundtrip(float("inf")) == float("inf")

    def test_nan_roundtrips(self):
        out = roundtrip(float("nan"))
        assert out != out

    def test_numpy_scalars_become_python(self):
        assert roundtrip(np.int32(7)) == 7
        assert roundtrip(np.float32(0.5)) == 0.5
        assert roundtrip(np.bool_(True)) is True

    def test_strings(self):
        assert roundtrip("héllo wörld ☃") == "héllo wörld ☃"
        assert roundtrip("") == ""

    def test_bytes(self):
        assert roundtrip(b"\x00\xff\x7f") == b"\x00\xff\x7f"
        assert roundtrip(bytearray(b"xy")) == b"xy"


class TestContainers:
    def test_nested_lists(self):
        value = [1, [2, [3, "x"]], None]
        assert roundtrip(value) == value

    def test_tuple_decodes_as_list(self):
        assert roundtrip((1, 2)) == [1, 2]

    def test_dict_mixed_keys(self):
        value = {"a": 1, 2: "b", "nested": {"x": [True]}}
        assert roundtrip(value) == value

    def test_empty_containers(self):
        assert roundtrip([]) == []
        assert roundtrip({}) == {}


class TestArrays:
    def test_float32_matrix(self):
        arr = np.arange(12, dtype=np.float32).reshape(3, 4)
        out = roundtrip(arr)
        assert out.dtype == np.float32
        assert out.shape == (3, 4)
        assert np.array_equal(out, arr)

    def test_int64_vector(self):
        arr = np.array([-1, 0, 2**40], dtype=np.int64)
        assert np.array_equal(roundtrip(arr), arr)

    def test_empty_array(self):
        arr = np.zeros((0,), dtype=np.float64)
        out = roundtrip(arr)
        assert out.shape == (0,)

    def test_non_contiguous_input(self):
        arr = np.arange(16, dtype=np.int32).reshape(4, 4)[:, ::2]
        out = roundtrip(arr)
        assert np.array_equal(out, arr)

    def test_decoded_array_is_readonly_view(self):
        # zero-copy contract: arrays decode as read-only views over the
        # wire buffer, so accidental aliasing fails loudly
        out = roundtrip(np.zeros(4, dtype=np.int32))
        assert not out.flags.writeable
        with pytest.raises(ValueError):
            out[0] = 1

    def test_decode_copy_arrays_gives_owned_writable(self):
        raw = encode(np.zeros(4, dtype=np.int32))
        out = decode(raw, copy_arrays=True)
        out[0] = 1  # must own its memory
        assert out[0] == 1
        assert out.base is None

    def test_strided_memoryview_encodes(self):
        view = memoryview(bytearray(range(16)))[::2]
        assert roundtrip(view) == bytes(range(0, 16, 2))

    def test_array_inside_dict(self):
        payload = {"data": np.ones(8, dtype=np.uint8), "n": 8}
        out = roundtrip(payload)
        assert out["data"].sum() == 8


class TestErrors:
    def test_unencodable_type(self):
        with pytest.raises(SerializationError):
            encode(object())

    def test_truncated_input(self):
        raw = encode([1, 2, 3])
        with pytest.raises(SerializationError):
            decode(raw[:-2])

    def test_trailing_garbage(self):
        with pytest.raises(SerializationError):
            decode(encode(1) + b"\x00")

    def test_unknown_tag(self):
        with pytest.raises(SerializationError):
            decode(b"\xfe")

    def test_empty_input(self):
        with pytest.raises(SerializationError):
            decode(b"")


_json_like = st.recursive(
    st.none()
    | st.booleans()
    | st.integers(min_value=-(2**70), max_value=2**70)
    | st.floats(allow_nan=False)
    | st.text(max_size=30)
    | st.binary(max_size=30),
    lambda children: st.lists(children, max_size=4)
    | st.dictionaries(st.text(max_size=8), children, max_size=4),
    max_leaves=20,
)


class TestProperties:
    @given(_json_like)
    @settings(max_examples=150)
    def test_roundtrip_identity(self, value):
        assert roundtrip(value) == value

    @given(
        np_arrays(
            dtype=st.sampled_from([np.int32, np.float32, np.float64, np.uint8]),
            shape=st.tuples(st.integers(0, 8), st.integers(0, 8)),
        )
    )
    @settings(max_examples=80)
    def test_array_roundtrip(self, arr):
        out = roundtrip(arr)
        assert out.dtype == arr.dtype
        assert out.shape == arr.shape
        assert np.array_equal(out, arr, equal_nan=True)

    @given(_json_like)
    @settings(max_examples=60)
    def test_encoding_deterministic(self, value):
        assert encode(value) == encode(value)
