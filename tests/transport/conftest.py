"""Deterministic seeding for the transport tests.

Same contract as ``tests/cluster/conftest.py``: each test's ``random``
and ``np.random`` state is derived from its node id, so sim-fabric
runs (and any chaos schedules layered on them) replay identically.
"""

import random
import zlib

import numpy as np
import pytest


@pytest.fixture(autouse=True)
def _deterministic_seed(request):
    seed = zlib.crc32(request.node.nodeid.encode("utf-8"))
    random.seed(seed)
    np.random.seed(seed & 0xFFFFFFFF)
    yield seed
