"""Tests for message framing and the three fabrics."""

import socket
import threading

import numpy as np
import pytest

from repro.transport import (
    Message, MessageKind, NetworkModel, NodeLostError, TransportError,
)
from repro.transport.inproc import InProcFabric
from repro.transport.netmodel import GigabitEthernet
from repro.transport.sim import SimFabric
from repro.transport.tcp import TcpFabric


class EchoHandler:
    def handle(self, message, now_s):
        return message.reply(echo=message.payload, at=now_s), now_s


class AckHandler:
    def handle(self, message, now_s):
        return message.reply(ok=True), now_s


class DelayHandler:
    """Pretends its device drains ``delay`` seconds after arrival."""

    def __init__(self, delay):
        self.delay = delay

    def handle(self, message, now_s):
        return message.reply(ok=True), now_s + self.delay


class FaultyHandler:
    def handle(self, message, now_s):
        raise RuntimeError("node exploded")


class TestMessageFraming:
    def test_roundtrip(self):
        msg = Message.request("do_thing", a=1, data=np.arange(4))
        out = Message.from_bytes(msg.to_bytes())
        assert out.method == "do_thing"
        assert out.kind == MessageKind.REQUEST
        assert out.msg_id == msg.msg_id
        assert list(out.payload["data"]) == [0, 1, 2, 3]

    def test_reply_echoes_id(self):
        msg = Message.request("x")
        reply = msg.reply(val=3)
        assert reply.msg_id == msg.msg_id
        assert reply.kind == MessageKind.RESPONSE

    def test_fail_carries_code(self):
        err = Message.request("x").fail(-5, "boom")
        assert err.is_error
        assert err.payload["code"] == -5

    def test_bad_magic_rejected(self):
        raw = bytearray(Message.request("x").to_bytes())
        raw[0] = 0
        with pytest.raises(Exception):
            Message.from_bytes(bytes(raw))

    def test_ids_increment(self):
        a = Message.request("x")
        b = Message.request("x")
        assert b.msg_id > a.msg_id


class TestNetworkModel:
    def test_transfer_time_components(self):
        net = NetworkModel(latency_s=1e-4, bandwidth_bps=1e8)
        assert net.transfer_time(0) == pytest.approx(1e-4)
        assert net.transfer_time(10**8) == pytest.approx(1.0001)

    def test_gbe_profile(self):
        net = GigabitEthernet()
        # 117.5 MB/s effective: 1 MB ~ 8.6ms
        assert 0.008 < net.transfer_time(1 << 20) < 0.01


class TestInProcFabric:
    def test_request_response(self):
        fabric = InProcFabric({"n0": EchoHandler()})
        resp = fabric.connect("n0").request(Message.request("ping", x=5))
        assert resp.payload["echo"]["x"] == 5

    def test_unknown_node(self):
        fabric = InProcFabric({})
        with pytest.raises(TransportError):
            fabric.connect("ghost")

    def test_channel_reuse(self):
        fabric = InProcFabric({"n0": EchoHandler()})
        assert fabric.connect("n0") is fabric.connect("n0")

    def test_full_serialisation_applied(self):
        # tuples become lists through the wire: proof bytes moved
        fabric = InProcFabric({"n0": EchoHandler()})
        resp = fabric.connect("n0").request(Message.request("p", t=(1, 2)))
        assert resp.payload["echo"]["t"] == [1, 2]

    def test_node_ids_sorted(self):
        fabric = InProcFabric({"b": EchoHandler(), "a": EchoHandler()})
        assert fabric.node_ids() == ["a", "b"]


class TestSimFabric:
    def test_latency_charged_per_round_trip(self):
        fabric = SimFabric({"n0": AckHandler()})
        fabric.connect("n0").request(Message.request("ping"))
        # 2 legs of latency + proc overhead at minimum
        net = fabric.netmodel
        assert fabric.now_s() >= 2 * net.latency_s + net.proc_overhead_s

    def test_large_payload_charged_by_bandwidth(self):
        fabric = SimFabric({"n0": AckHandler()})
        nbytes = 11_750_000  # 0.1s at GbE effective rate
        t0 = fabric.now_s()
        fabric.connect("n0").request(
            Message.request("write", data=np.zeros(nbytes, dtype=np.uint8))
        )
        assert 0.09 < fabric.now_s() - t0 < 0.13

    def test_device_drain_delays_response(self):
        fabric = SimFabric({"n0": DelayHandler(2.0)})
        fabric.connect("n0").request(Message.request("finish"))
        assert fabric.now_s() > 2.0

    def test_node_fault_propagates(self):
        fabric = SimFabric({"n0": FaultyHandler()})
        with pytest.raises(RuntimeError):
            fabric.connect("n0").request(Message.request("x"))

    def test_traffic_accounting(self):
        fabric = SimFabric({"n0": AckHandler()})
        fabric.connect("n0").request(Message.request("a"))
        fabric.connect("n0").request(Message.request("b"))
        assert fabric.messages == 2
        assert fabric.tx_bytes > 0
        assert fabric.rx_bytes > 0

    def test_clock_monotonic_across_nodes(self):
        fabric = SimFabric({"a": AckHandler(), "b": AckHandler()})
        fabric.connect("a").request(Message.request("x"))
        t1 = fabric.now_s()
        fabric.connect("b").request(Message.request("y"))
        assert fabric.now_s() > t1


class TestTcpFabric:
    def test_request_response_over_socket(self):
        fabric = TcpFabric({"n0": EchoHandler()})
        try:
            resp = fabric.connect("n0").request(
                Message.request("ping", arr=np.arange(100, dtype=np.int64))
            )
            assert resp.payload["echo"]["arr"].sum() == 4950
        finally:
            fabric.close()

    def test_multiple_nodes_distinct_ports(self):
        fabric = TcpFabric({"a": EchoHandler(), "b": EchoHandler()})
        try:
            ports = {srv.address[1] for srv in fabric._servers.values()}
            assert len(ports) == 2
            ra = fabric.connect("a").request(Message.request("p", v=1))
            rb = fabric.connect("b").request(Message.request("p", v=2))
            assert ra.payload["echo"]["v"] == 1
            assert rb.payload["echo"]["v"] == 2
        finally:
            fabric.close()

    def test_node_fault_becomes_error_frame(self):
        fabric = TcpFabric({"n0": FaultyHandler()})
        try:
            resp = fabric.connect("n0").request(Message.request("x"))
            assert resp.is_error
            assert "exploded" in resp.payload["message"]
        finally:
            fabric.close()

    def test_large_transfer(self):
        fabric = TcpFabric({"n0": AckHandler()})
        try:
            data = np.random.default_rng(0).integers(
                0, 255, size=4 << 20, dtype=np.uint8
            )
            resp = fabric.connect("n0").request(Message.request("w", data=data))
            assert resp.payload["ok"] is True
        finally:
            fabric.close()

    def test_sequential_requests_same_channel(self):
        fabric = TcpFabric({"n0": EchoHandler()})
        try:
            channel = fabric.connect("n0")
            for index in range(20):
                resp = channel.request(Message.request("p", i=index))
                assert resp.payload["echo"]["i"] == index
        finally:
            fabric.close()


def _half_close_server():
    """A raw acceptor that closes every connection mid-request, the way
    a crashing daemon half-closes its sockets.  Returns (address, stop)."""
    listener = socket.create_server(("127.0.0.1", 0))
    listener.settimeout(0.2)
    stop = threading.Event()

    def loop():
        while not stop.is_set():
            try:
                conn, _peer = listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            conn.recv(64)  # swallow part of the frame, then vanish
            conn.close()
        listener.close()

    threading.Thread(target=loop, daemon=True).start()
    return listener.getsockname(), stop


class TestTcpNodeLoss:
    """A dead or unresponsive peer must surface as a typed
    NodeLostError carrying the node id -- never a hang, never a falsy
    payload the caller could mistake for data."""

    def test_half_close_raises_node_lost(self):
        address, stop = _half_close_server()
        fabric = TcpFabric()
        fabric.add_remote("n0", address)
        try:
            with pytest.raises(NodeLostError) as err:
                fabric.connect("n0").request(Message.request("ping"))
            assert err.value.node_id == "n0"
        finally:
            stop.set()
            fabric.close()

    def test_half_close_during_peer_request(self):
        address, stop = _half_close_server()
        fabric = TcpFabric({"src": EchoHandler()})
        fabric.add_remote("dst", address)
        try:
            with pytest.raises(NodeLostError) as err:
                fabric.peer_request(
                    "src", "dst",
                    Message.request("peer_request",
                                    data=np.zeros(1024, dtype=np.uint8)),
                )
            assert err.value.node_id == "dst"
        finally:
            stop.set()
            fabric.close()

    def test_silent_node_times_out_as_node_lost(self):
        # accepts the connection, never answers: the bounded wait turns
        # into a loss signal instead of blocking the host forever
        listener = socket.create_server(("127.0.0.1", 0))
        fabric = TcpFabric()
        fabric.add_remote("mute", listener.getsockname(), timeout_s=0.2)
        try:
            with pytest.raises(NodeLostError) as err:
                fabric.connect("mute").request(Message.request("ping"))
            assert err.value.node_id == "mute"
            assert "no response" in str(err.value)
        finally:
            fabric.close()
            listener.close()

    def test_killed_server_severs_live_channels(self):
        fabric = TcpFabric({"n0": EchoHandler()})
        try:
            channel = fabric.connect("n0")
            assert channel.request(Message.request("p", v=1)).payload
            fabric._servers["n0"].close()  # the node daemon dies
            with pytest.raises(NodeLostError) as err:
                channel.request(Message.request("p", v=2))
            assert err.value.node_id == "n0"
        finally:
            fabric.close()

    def test_connect_to_dead_address_raises(self):
        listener = socket.create_server(("127.0.0.1", 0))
        address = listener.getsockname()
        listener.close()  # port is now dead
        fabric = TcpFabric()
        fabric.add_remote("gone", address, timeout_s=0.5)
        try:
            with pytest.raises(NodeLostError) as err:
                fabric.connect("gone")
            assert err.value.node_id == "gone"
        finally:
            fabric.close()
