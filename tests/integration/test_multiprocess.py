"""True multi-process deployment: NMP daemons as separate OS processes,
the host connecting through the system configuration file."""

import subprocess
import sys

import numpy as np
import pytest

from repro.cluster import ClusterConfig, HostProcess, NodeConfig
from repro.core.wrapper import HaoCL
from repro.workloads import get_workload


def _spawn_daemon(node_id, devices):
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cluster.daemon",
         "--node-id", node_id, "--devices", devices, "--port", "0"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )
    port = None
    for _ in range(50):
        line = proc.stdout.readline()
        if line.startswith("LISTENING"):
            port = int(line.split()[2])
            break
    if port is None:
        proc.kill()
        raise RuntimeError("daemon did not announce a port")
    return proc, port


@pytest.fixture(scope="module")
def remote_cluster():
    daemons = []
    nodes = []
    try:
        for node_id in ("gpu0", "gpu1"):
            proc, port = _spawn_daemon(node_id, "gpu")
            daemons.append(proc)
            nodes.append(NodeConfig(node_id, ["gpu"], port=port, mode="real"))
        config = ClusterConfig(nodes)
        host = HostProcess.connect_remote(config)
        yield host
        host.close()
    finally:
        for proc in daemons:
            proc.kill()
            proc.wait(timeout=10)


class TestMultiProcessCluster:
    def test_discovery_across_processes(self, remote_cluster):
        assert len(remote_cluster.registry) == 2
        assert remote_cluster.registry.node_ids() == ["gpu0", "gpu1"]

    def test_ping_every_daemon(self, remote_cluster):
        for node_id in ("gpu0", "gpu1"):
            assert remote_cluster.call(node_id, "ping")["node_id"] == node_id

    def test_distributed_workload_across_processes(self, remote_cluster):
        workload = get_workload("matrixmul")
        inputs = workload.generate(16, seed=21)
        driver = HaoCL(remote_cluster)
        from repro.core.session import HaoCLSession

        session = HaoCLSession(host=remote_cluster)
        outputs = workload.run(session, inputs, session.devices)
        assert workload.validate(outputs, workload.reference(inputs))
        del driver

    def test_config_requires_ports(self):
        config = ClusterConfig([NodeConfig("gpu0", ["gpu"])])  # port 0
        with pytest.raises(ValueError):
            HostProcess.connect_remote(config)
