"""Cross-layer integration tests: TCP cluster, scheduling with real data,
failure injection, and multi-user runs."""

import numpy as np
import pytest

from repro.core import HaoCLSession
from repro.core.tenancy import DeviceLease, try_acquire
from repro.ocl.errors import CLError
from repro.workloads import get_workload

VADD = """
__kernel void vadd(__global const float* a, __global const float* b,
                   __global float* c, int n) {
    int i = get_global_id(0);
    if (i < n) c[i] = a[i] + b[i];
}
"""


class TestTcpCluster:
    """The whole stack over real sockets: the engineering proof that the
    distributed protocol works, not just the in-process shortcut."""

    def test_workload_over_tcp(self):
        workload = get_workload("matrixmul")
        inputs = workload.generate(16, seed=8)
        with HaoCLSession(gpu_nodes=2, mode="real",
                          transport="tcp") as session:
            outputs = workload.run(session, inputs, session.devices)
        assert workload.validate(outputs, workload.reference(inputs))

    def test_error_propagates_over_tcp(self):
        with HaoCLSession(gpu_nodes=1, mode="real",
                          transport="tcp") as session:
            ctx = session.context()
            with pytest.raises(CLError):
                session.program(ctx, "__kernel void broken( {")

    def test_many_small_requests(self):
        with HaoCLSession(gpu_nodes=1, mode="real",
                          transport="tcp") as session:
            for _ in range(30):
                assert session.host.call("gpu0", "ping")["node_id"] == "gpu0"


class TestSchedulingWithRealData:
    def test_hetero_policy_produces_correct_results(self):
        """Scheduling must never affect correctness, only placement."""
        workload = get_workload("spmv")
        inputs = workload.generate(100, seed=6)
        expected = workload.reference(inputs)
        for policy in ("user-directed", "round-robin", "hetero-aware",
                       "locality-aware"):
            with HaoCLSession(gpu_nodes=2, fpga_nodes=1, mode="real",
                              transport="inproc", policy=policy) as session:
                outputs = workload.run(session, inputs, session.devices)
            assert workload.validate(outputs, expected), policy

    def test_profiler_learns_from_real_launches(self):
        with HaoCLSession(gpu_nodes=1, cpu_nodes=1, mode="real",
                          transport="inproc",
                          policy="hetero-aware") as session:
            ctx = session.context()
            prog = session.program(ctx, VADD)
            queue = session.queue(ctx, session.devices[0])
            for _ in range(3):
                a = session.buffer_from(ctx, np.ones(64, dtype=np.float32))
                b = session.buffer_from(ctx, np.ones(64, dtype=np.float32))
                c = session.empty_buffer(ctx, 256)
                kernel = session.kernel(prog, "vadd", a, b, c, np.int32(64))
                session.cl.enqueue_nd_range_kernel(queue, kernel, (64,))
            assert "vadd" in session.cl.profiler.known_kernels()


class TestFailureInjection:
    def test_remote_kernel_fault_is_catchable_and_recoverable(self):
        with HaoCLSession(gpu_nodes=1, mode="real",
                          transport="inproc") as session:
            ctx = session.context()
            prog = session.program(
                ctx, "__kernel void oob(__global int* a) { a[99999] = 1; }"
            )
            queue = session.queue(ctx, session.devices[0])
            buf = session.buffer_from(ctx, np.zeros(4, dtype=np.int32))
            kernel = session.kernel(prog, "oob", buf)
            with pytest.raises(CLError):
                session.cl.enqueue_nd_range_kernel(queue, kernel, (1,))
            # the session must still be usable afterwards
            prog2 = session.program(ctx, VADD)
            a = session.buffer_from(ctx, np.ones(8, dtype=np.float32))
            b = session.buffer_from(ctx, np.ones(8, dtype=np.float32))
            c = session.empty_buffer(ctx, 32)
            k2 = session.kernel(prog2, "vadd", a, b, c, np.int32(8))
            session.cl.enqueue_nd_range_kernel(queue, k2, (8,))
            out = session.read_array(queue, c, np.float32)
            assert np.allclose(out, 2.0)

    def test_divergent_barrier_reported_through_stack(self):
        with HaoCLSession(gpu_nodes=1, mode="real",
                          transport="inproc") as session:
            ctx = session.context()
            prog = session.program(
                ctx,
                "__kernel void bad(__global int* a) {"
                " if (get_local_id(0) == 0) barrier(1); }",
            )
            queue = session.queue(ctx, session.devices[0])
            buf = session.buffer_from(ctx, np.zeros(4, dtype=np.int32))
            kernel = session.kernel(prog, "bad", buf)
            with pytest.raises(CLError):
                session.cl.enqueue_nd_range_kernel(queue, kernel, (4,), (4,))


class TestMultiUser:
    def test_two_users_share_cluster(self):
        with HaoCLSession(gpu_nodes=2, mode="real",
                          transport="inproc") as session:
            gpus = session.devices
            with DeviceLease(session.cl, "alice", gpus[:1], shared=False):
                # bob cannot take alice's GPU, but can take the other one
                assert try_acquire(session.cl, "bob", gpus[:1],
                                   shared=False) is None
                bob = try_acquire(session.cl, "bob", gpus[1:], shared=False)
                assert bob is not None
                bob.release()

    def test_enqueue_under_wrong_user_refused(self):
        with HaoCLSession(gpu_nodes=1, mode="real", transport="inproc",
                          user="bob") as session:
            device = session.devices[0]
            with DeviceLease(session.cl, "alice", [device], shared=False):
                ctx = session.context()
                prog = session.program(ctx, VADD)
                queue = session.queue(ctx, device)
                a = session.buffer_from(ctx, np.ones(4, dtype=np.float32))
                b = session.buffer_from(ctx, np.ones(4, dtype=np.float32))
                c = session.empty_buffer(ctx, 16)
                kernel = session.kernel(prog, "vadd", a, b, c, np.int32(4))
                with pytest.raises(CLError):
                    session.cl.enqueue_nd_range_kernel(queue, kernel, (4,))


class TestSimulatedScaling:
    def test_knn_speedup_grows_with_nodes(self):
        from repro.experiments.harness import run_elapsed

        t1 = run_elapsed("knn", "haocl-gpu", nodes=1, scale=300_000)
        t4 = run_elapsed("knn", "haocl-gpu", nodes=4, scale=300_000)
        assert t4 < t1 / 2

    def test_deterministic_simulation(self):
        from repro.experiments.harness import run_elapsed

        a = run_elapsed("matrixmul", "haocl-gpu", nodes=3, scale=1000)
        b = run_elapsed("matrixmul", "haocl-gpu", nodes=3, scale=1000)
        assert a == b
