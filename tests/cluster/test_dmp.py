"""Data Management Process tests: residency tables, peer-to-peer
migration, eviction writeback, content dedup, and the differential
guarantee that the data plane never changes results."""

import numpy as np
import pytest

from repro.cluster import NodeConfig, NodeManagementProcess
from repro.cluster.dmp import ResidencyTable
from repro.core import HaoCLSession
from repro.core.icd import HOST
from repro.ocl.errors import CLError
from repro.serve import HaoCLService, Job
from repro.transport.inproc import InProcFabric
from repro.transport.message import Message

INC = """
__kernel void inc(__global int* a, int n) {
    int i = get_global_id(0);
    if (i < n) a[i] = a[i] + 1;
}
"""

SAXPY = """
__kernel void saxpy(__global float* y, __global const float* x,
                    float a, int n) {
    int i = get_global_id(0);
    if (i < n) y[i] = y[i] + a * x[i];
}
"""


# -- residency table unit tests ------------------------------------------------


class TestResidencyTable:
    def test_unlimited_capacity_never_evicts(self):
        table = ResidencyTable()
        for handle in range(100):
            assert table.admit(handle, 1 << 20) == []
        assert table.resident_bytes == 100 << 20

    def test_lru_eviction_order(self):
        table = ResidencyTable(capacity_bytes=300)
        table.admit(1, 100)
        table.admit(2, 100)
        table.admit(3, 100)
        table.touch(1)  # 2 becomes the least recently used
        victims = table.admit(4, 100)
        assert [handle for handle, _record in victims] == [2]
        assert 1 in table and 3 in table and 4 in table

    def test_eviction_reports_dirty_flag(self):
        table = ResidencyTable(capacity_bytes=200)
        table.admit(1, 100)
        table.mark_dirty(1)
        table.admit(2, 100)
        victims = table.admit(3, 100)
        assert [(h, record.dirty) for h, record in victims] == [(1, True)]

    def test_protected_handles_survive(self):
        table = ResidencyTable(capacity_bytes=200)
        table.admit(1, 100)
        table.admit(2, 100)
        victims = table.admit(3, 100, protected={1})
        assert [h for h, _r in victims] == [2]
        assert 1 in table

    def test_overcommit_when_everything_protected(self):
        table = ResidencyTable(capacity_bytes=200)
        table.admit(1, 100)
        table.admit(2, 100)
        assert table.admit(3, 100, protected={1, 2}) == []
        assert table.overcommits == 1

    def test_drop_frees_bytes(self):
        table = ResidencyTable(capacity_bytes=200)
        table.admit(1, 150)
        table.drop(1)
        assert table.resident_bytes == 0
        assert table.admit(2, 200) == []

    def test_readmission_keeps_the_dirty_flag(self):
        """A dirty replica re-admitted (e.g. re-shipped mid-stream) must
        not launder itself clean -- at its eventual eviction the owed
        writeback would be skipped and the written bytes dropped."""
        table = ResidencyTable(capacity_bytes=300)
        table.admit(1, 100)
        table.mark_dirty(1)
        table.admit(1, 100)  # re-admit the same handle
        assert table.is_dirty(1)
        table.admit(2, 100)
        victims = table.admit(3, 200)
        # the re-admitted replica still evicts as dirty (writeback owed)
        assert [(h, record.dirty) for h, record in victims] == [(1, True)]

    def test_readmission_of_clean_replica_stays_clean(self):
        table = ResidencyTable(capacity_bytes=300)
        table.admit(1, 100)
        table.admit(1, 100)
        assert not table.is_dirty(1)

    def test_two_buffer_table_prefetch_evicts_lru_not_protected(self):
        """The streaming shape: a table holding exactly two chunk
        buffers, the executing chunk protected, the next chunk
        prefetching.  The prefetch must evict the *retired* chunk (LRU),
        never the protected one, and report its dirty flag."""
        table = ResidencyTable(capacity_bytes=200)
        table.admit("retired", 100)
        table.mark_dirty("retired")       # wrote its slice, owes writeback
        table.admit("executing", 100)
        table.mark_dirty("executing")
        victims = table.admit("next", 100, protected={"executing"})
        assert [(h, r.dirty) for h, r in victims] == [("retired", True)]
        assert "executing" in table and "next" in table
        assert table.resident_bytes == 200


# -- peer-to-peer migration ----------------------------------------------------


def _write_on_node(sess, ctx, buf, device, n=4):
    prog = sess.program(ctx, INC)
    queue = sess.queue(ctx, device)
    kern = sess.kernel(prog, "inc", buf, np.int32(n))
    sess.cl.enqueue_nd_range_kernel(queue, kern, (n,))
    return queue


class TestP2PMigration:
    @pytest.fixture
    def sess(self):
        with HaoCLSession(gpu_nodes=2, mode="real", transport="inproc") as s:
            yield s

    def test_migration_bytes_are_p2p_not_host(self, sess):
        ctx = sess.context()
        buf = sess.buffer_from(ctx, np.zeros(4, dtype=np.int32))
        dev0, dev1 = sess.devices
        _write_on_node(sess, ctx, buf, dev0)
        icd = sess.cl.icd
        host_to = icd.bytes_to_nodes
        host_from = icd.bytes_from_nodes
        icd.ensure_fresh(buf, dev1)
        assert icd.dmp_bytes_p2p == buf.size
        assert icd.bytes_host_relayed == 0
        assert icd.bytes_to_nodes == host_to
        assert icd.bytes_from_nodes == host_from
        assert buf.fresh == {dev0.node_id, dev1.node_id}

    def test_migrated_bytes_are_correct(self, sess):
        """A kernel on node B sees exactly what node A wrote."""
        ctx = sess.context()
        buf = sess.buffer_from(ctx, np.zeros(4, dtype=np.int32))
        dev0, dev1 = sess.devices
        _write_on_node(sess, ctx, buf, dev0)  # -> [1, 1, 1, 1]
        q1 = _write_on_node(sess, ctx, buf, dev1)  # migrates, -> [2, 2, 2, 2]
        out = sess.read_array(q1, buf, np.int32)
        assert list(out) == [2, 2, 2, 2]
        assert sess.cl.icd.bytes_host_relayed == 0

    def test_node_stats_count_p2p_transfers(self, sess):
        ctx = sess.context()
        buf = sess.buffer_from(ctx, np.zeros(4, dtype=np.int32))
        dev0, dev1 = sess.devices
        _write_on_node(sess, ctx, buf, dev0)
        sess.cl.icd.ensure_fresh(buf, dev1)
        stats = sess.stats()
        assert stats[dev1.node_id]["dmp"]["bytes_pulled"] == buf.size
        assert stats[dev1.node_id]["dmp"]["p2p_transfers"] == 1
        assert stats["_host"]["transfers"]["dmp_bytes_p2p"] == buf.size

    def test_sim_fabric_charges_peer_wire(self):
        with HaoCLSession(gpu_nodes=2, mode="modeled", transport="sim") as sess:
            ctx = sess.context()
            buf = sess.synthetic_buffer(ctx, 1 << 20)
            dev0, dev1 = sess.devices
            queue = sess.queue(ctx, dev0)
            sess.write(queue, buf, nbytes=buf.size)
            prog = sess.program(ctx, INC)
            kern = sess.kernel(prog, "inc", buf, np.int32(4))
            sess.cl.enqueue_nd_range_kernel(queue, kern, (4,))
            before = sess.host.fabric.peer_bytes
            sess.cl.icd.ensure_fresh(buf, dev1)
            assert sess.host.fabric.peer_messages == 1
            assert sess.host.fabric.peer_bytes > before
            assert sess.cl.icd.dmp_bytes_p2p == buf.size

    def test_tcp_fabric_migrates_p2p(self):
        with HaoCLSession(gpu_nodes=2, mode="real", transport="tcp") as sess:
            ctx = sess.context()
            buf = sess.buffer_from(ctx, np.zeros(4, dtype=np.int32))
            dev0, dev1 = sess.devices
            _write_on_node(sess, ctx, buf, dev0)
            q1 = _write_on_node(sess, ctx, buf, dev1)
            out = sess.read_array(q1, buf, np.int32)
            assert list(out) == [2, 2, 2, 2]
            assert sess.cl.icd.dmp_bytes_p2p == buf.size
            assert sess.cl.icd.bytes_host_relayed == 0


class TestDmpPushOp:
    """The source-driven half of the plan, exercised at the NMP level."""

    def _cluster(self):
        nmps = {
            name: NodeManagementProcess(NodeConfig(name, ["gpu"], mode="real"))
            for name in ("a", "b")
        }
        fabric = InProcFabric(nmps)
        for nmp in nmps.values():
            nmp.attach_fabric(fabric)
        return nmps

    def _setup_node(self, nmp, data=None):
        devices, _ = nmp.handle(Message.request("get_device_ids"), 0.0)
        handle = devices.payload["devices"][0]["handle"]
        ctx = nmp.handle(Message.request("create_context", devices=[handle]),
                         0.0)[0].payload["context"]
        queue = nmp.handle(Message.request("create_queue", context=ctx,
                                           device=handle), 0.0)[0].payload["queue"]
        buf = nmp.handle(Message.request("create_buffer", context=ctx, size=16,
                                         data=data), 0.0)[0].payload["buffer"]
        return queue, buf

    def test_push_moves_bytes_to_peer(self):
        nmps = self._cluster()
        payload = np.arange(4, dtype=np.int32)
        src_queue, src_buf = self._setup_node(nmps["a"], data=payload)
        dst_queue, dst_buf = self._setup_node(nmps["b"])
        response, _ready = nmps["a"].handle(
            Message.request(
                "dmp_push", queue=src_queue, buffer=src_buf,
                dst_node="b", dst_queue=dst_queue, dst_buffer=dst_buf,
            ),
            0.0,
        )
        assert not response.is_error, response.payload
        assert response.payload["nbytes"] == 16
        # the pushed replica is dirty on b until the host reads it back
        assert nmps["b"].dmp.table.is_dirty(dst_buf)
        read, _ready = nmps["b"].handle(
            Message.request("read_buffer", queue=dst_queue, buffer=dst_buf),
            0.0,
        )
        out = np.asarray(read.payload["data"]).view(np.int32)
        assert list(out) == [0, 1, 2, 3]
        assert nmps["a"].dmp.bytes_pushed == 16
        # ...and a full host read back makes it clean again
        assert not nmps["b"].dmp.table.is_dirty(dst_buf)


# -- eviction + writeback ------------------------------------------------------


class TestEvictionWriteback:
    def test_dirty_eviction_writes_back_to_host(self):
        """A kernel-written replica evicted under capacity pressure must
        land in the host shadow, not vanish."""
        with HaoCLSession(gpu_nodes=1, mode="real", transport="inproc",
                          dmp_capacity_bytes=64) as sess:
            ctx = sess.context()
            dev = sess.devices[0]
            buf = sess.buffer_from(ctx, np.zeros(4, dtype=np.int32))
            queue = _write_on_node(sess, ctx, buf, dev)  # dirty on the node
            sess.finish(queue)
            assert buf.fresh == {dev.node_id}
            # fill the node past its 64-byte capacity: evicts buf (LRU)
            filler = [sess.buffer_from(ctx, np.zeros(8, dtype=np.int32))
                      for _ in range(8)]
            for extra in filler:
                sess.cl.icd.ensure_fresh(extra, dev)
            icd = sess.cl.icd
            assert icd.dmp_evictions > 0
            assert icd.dmp_writebacks > 0
            assert HOST in buf.fresh and dev.node_id not in buf.fresh
            # the written values survived the eviction
            assert list(buf.shadow.view(np.int32)) == [1, 1, 1, 1]

    def test_clean_eviction_has_no_writeback(self):
        with HaoCLSession(gpu_nodes=1, mode="real", transport="inproc",
                          dmp_capacity_bytes=64) as sess:
            ctx = sess.context()
            dev = sess.devices[0]
            buf = sess.buffer_from(ctx, np.arange(4, dtype=np.int32))
            sess.cl.icd.ensure_fresh(buf, dev)  # replicated, host still fresh
            for _ in range(8):
                extra = sess.buffer_from(ctx, np.zeros(8, dtype=np.int32))
                sess.cl.icd.ensure_fresh(extra, dev)
            icd = sess.cl.icd
            assert icd.dmp_evictions > 0
            assert icd.dmp_writebacks == 0
            assert buf.fresh == {HOST}

    def test_evicted_replica_reships_on_next_use(self):
        with HaoCLSession(gpu_nodes=1, mode="real", transport="inproc",
                          dmp_capacity_bytes=64) as sess:
            ctx = sess.context()
            dev = sess.devices[0]
            buf = sess.buffer_from(ctx, np.zeros(4, dtype=np.int32))
            queue = _write_on_node(sess, ctx, buf, dev)
            for _ in range(8):
                extra = sess.buffer_from(ctx, np.zeros(8, dtype=np.int32))
                sess.cl.icd.ensure_fresh(extra, dev)
            assert dev.node_id not in buf.fresh
            # running the kernel again re-ships the written-back bytes
            _write_on_node(sess, ctx, buf, dev)
            out = sess.read_array(queue, buf, np.int32)
            assert list(out) == [2, 2, 2, 2]

    def test_single_buffer_over_capacity_rejected(self):
        with HaoCLSession(gpu_nodes=1, mode="real", transport="inproc",
                          dmp_capacity_bytes=16) as sess:
            ctx = sess.context()
            dev = sess.devices[0]
            buf = sess.buffer_from(ctx, np.zeros(64, dtype=np.int32))
            for _ in range(3):  # retries must not leak node memory
                with pytest.raises(CLError):
                    sess.cl.icd.ensure_fresh(buf, dev)
            nmp = sess.host.fabric._handlers[dev.node_id]
            assert len(nmp._tables["buffer"]) == 0
            assert nmp.dmp.table.resident_bytes == 0

    def test_node_stats_expose_residency(self):
        with HaoCLSession(gpu_nodes=1, mode="real", transport="inproc",
                          dmp_capacity_bytes=1024) as sess:
            ctx = sess.context()
            dev = sess.devices[0]
            buf = sess.buffer_from(ctx, np.zeros(4, dtype=np.int32))
            sess.cl.icd.ensure_fresh(buf, dev)
            dmp = sess.stats()[dev.node_id]["dmp"]
            assert dmp["capacity_bytes"] == 1024
            assert dmp["resident_bytes"] == buf.size
            assert dmp["buffers"] == 1


# -- content dedup -------------------------------------------------------------


def _saxpy_job(tenant, x, n=64):
    y = np.ones(n, dtype=np.float32)
    return Job(tenant, SAXPY, "saxpy", [y, x, 2.0, np.int32(n)], (n,))


class TestContentDedup:
    def test_repeated_inputs_ship_once(self):
        """Identical input arrays across jobs/tenants hit the per-node
        dedup cache instead of re-crossing the host link."""
        with HaoCLSession(gpu_nodes=1, mode="real", transport="inproc") as sess:
            x = np.arange(64, dtype=np.float32)
            with HaoCLService(sess, batching=False) as service:
                for tenant in ("t0", "t1", "t2", "t3"):
                    service.submit(_saxpy_job(tenant, x))
                service.run()
            icd = sess.cl.icd
            assert icd.dmp_dedup_hits >= 3  # x shipped once, reused 3x
            assert icd.dmp_dedup_bytes_saved >= 3 * x.nbytes

    def test_dedup_results_still_correct(self):
        with HaoCLSession(gpu_nodes=1, mode="real", transport="inproc") as sess:
            x = np.arange(64, dtype=np.float32)
            results = []
            with HaoCLService(sess, batching=False) as service:
                jobs = [service.submit(_saxpy_job("t%d" % i, x))
                        for i in range(4)]
                service.run()
                results = [job.result["y"] for job in jobs]
            assert sess.cl.icd.dmp_dedup_hits > 0
            expected = 1.0 + 2.0 * x
            for out in results:
                np.testing.assert_array_equal(out, expected)

    def test_distinct_inputs_do_not_dedup(self):
        with HaoCLSession(gpu_nodes=1, mode="real", transport="inproc") as sess:
            with HaoCLService(sess, batching=False) as service:
                for i in range(3):
                    # every array unique -- including y across jobs
                    x = np.arange(64, dtype=np.float32) + 1000.0 * i
                    y = np.arange(64, dtype=np.float32) - 7.0 * i
                    job = Job("t%d" % i, SAXPY, "saxpy",
                              [y, x, 2.0, np.int32(64)], (64,))
                    service.submit(job)
                service.run()
            assert sess.cl.icd.dmp_dedup_hits == 0

    def test_cross_node_dedup_pulls_peer_to_peer(self):
        """Content already on node A reaches node B over the peer link,
        sparing the host NIC entirely."""
        with HaoCLSession(gpu_nodes=2, mode="real", transport="inproc") as sess:
            ctx = sess.context()
            dev0, dev1 = sess.devices
            data = np.arange(16, dtype=np.int32)
            first = sess.buffer_from(ctx, data)
            first.content_digest = "digest-x"
            sess.cl.icd.ensure_fresh(first, dev0)
            sess.cl.icd.release_buffer(first)  # donated to node0's cache
            second = sess.buffer_from(ctx, data)
            second.content_digest = "digest-x"
            host_to = sess.cl.icd.bytes_to_nodes
            sess.cl.icd.ensure_fresh(second, dev1)
            icd = sess.cl.icd
            assert icd.dmp_dedup_hits == 1
            assert icd.dmp_bytes_p2p == second.size
            assert icd.bytes_to_nodes == host_to  # host link untouched
            queue = sess.queue(ctx, dev1)
            out = sess.read_array(queue, second, np.int32)
            np.testing.assert_array_equal(out, data)

    def test_batch_exposes_distinct_input_digests(self):
        """The batcher's digest tagging: a batch reports the distinct
        payloads the data plane must ship (repeats are dedup hits)."""
        from repro.serve.batcher import Batch

        x = np.arange(64, dtype=np.float32)
        jobs = [_saxpy_job("t%d" % i, x) for i in range(3)]
        batch = Batch(jobs)
        digests = batch.input_digests()
        # 3 jobs x (y, x) arrays, but only 2 distinct payloads: the
        # shared x and the identical ones-vector y
        assert len(digests) == 2
        assert digests == sorted(set(
            d for job in jobs for d in job.input_digests() if d
        ))

    def test_dedup_cache_respects_byte_budget(self):
        with HaoCLSession(gpu_nodes=1, mode="real", transport="inproc",
                          dedup_cache_bytes=128) as sess:
            ctx = sess.context()
            dev = sess.devices[0]
            icd = sess.cl.icd
            for i in range(4):
                buf = sess.buffer_from(ctx, np.full(16, i, dtype=np.int32))
                buf.content_digest = "digest-%d" % i
                icd.ensure_fresh(buf, dev)
                icd.release_buffer(buf)
            cache = icd._content_cache[dev.node_id]
            assert sum(n for _h, n in cache.values()) <= 128
            assert len(cache) == 2  # 2 x 64 bytes fit, LRU dropped


# -- device-side copies (satellite bugfix) -------------------------------------


class TestDeviceSideCopy:
    @pytest.fixture
    def sess(self):
        with HaoCLSession(gpu_nodes=1, mode="real", transport="inproc") as s:
            yield s

    def test_same_node_copy_never_round_trips_host(self, sess):
        """src fresh on a node -> the copy runs on the node's device;
        the old path fetched the bytes to the host and re-shipped."""
        ctx = sess.context()
        dev = sess.devices[0]
        src = sess.buffer_from(ctx, np.zeros(4, dtype=np.int32))
        queue = _write_on_node(sess, ctx, src, dev)  # src fresh on node only
        dst = sess.empty_buffer(ctx, src.size)
        icd = sess.cl.icd
        before_from = icd.bytes_from_nodes
        before_to = icd.bytes_to_nodes
        sess.cl.enqueue_copy_buffer(queue, src, dst)
        assert icd.bytes_from_nodes == before_from  # no host fetch
        assert dst.fresh == {dev.node_id}
        out = sess.read_array(queue, dst, np.int32)
        assert list(out) == [1, 1, 1, 1]
        # exactly one read crossed the wire: the final result readback
        assert icd.bytes_from_nodes == before_from + dst.size
        assert icd.bytes_to_nodes == before_to

    def test_copy_honors_offsets_and_nbytes(self, sess):
        ctx = sess.context()
        dev = sess.devices[0]
        src = sess.buffer_from(ctx, np.arange(8, dtype=np.int32))
        dst = sess.buffer_from(ctx, np.full(8, -1, dtype=np.int32))
        queue = sess.queue(ctx, dev)
        # copy src[2:5] over dst[1:4] (element offsets x4 bytes)
        sess.cl.enqueue_copy_buffer(queue, src, dst, nbytes=12,
                                    src_offset=8, dst_offset=4)
        out = sess.read_array(queue, dst, np.int32)
        assert list(out) == [-1, 2, 3, 4, -1, -1, -1, -1]

    def test_device_side_partial_copy_with_both_resident(self, sess):
        """A partial copy stays device-side when the node holds fresh
        bytes of both operands."""
        ctx = sess.context()
        dev = sess.devices[0]
        src = sess.buffer_from(ctx, np.zeros(4, dtype=np.int32))
        queue = _write_on_node(sess, ctx, src, dev)  # -> [1,1,1,1] on node
        dst = sess.buffer_from(ctx, np.full(4, 9, dtype=np.int32))
        sess.cl.icd.ensure_fresh(dst, dev)  # dst resident and fresh
        icd = sess.cl.icd
        before_from = icd.bytes_from_nodes
        sess.cl.enqueue_copy_buffer(queue, src, dst, nbytes=8, dst_offset=8)
        assert icd.bytes_from_nodes == before_from  # no host round trip
        out = sess.read_array(queue, dst, np.int32)
        assert list(out) == [9, 9, 1, 1]

    def test_copy_region_validation(self, sess):
        ctx = sess.context()
        dev = sess.devices[0]
        src = sess.buffer_from(ctx, np.arange(4, dtype=np.int32))
        dst = sess.empty_buffer(ctx, 8)
        queue = sess.queue(ctx, dev)
        with pytest.raises(CLError):
            sess.cl.enqueue_copy_buffer(queue, src, dst)  # 16 > 8
        with pytest.raises(CLError):
            sess.cl.enqueue_copy_buffer(queue, src, dst, nbytes=8,
                                        src_offset=12)

    def test_api_copy_with_offsets(self, sess):
        from repro.core import api as cl

        ctx = sess.context()
        dev = sess.devices[0]
        queue = sess.queue(ctx, dev)
        cl.set_current(sess.cl)
        try:
            src = sess.buffer_from(ctx, np.arange(4, dtype=np.int32))
            dst = sess.buffer_from(ctx, np.zeros(4, dtype=np.int32))
            cl.clEnqueueCopyBuffer(queue, src, dst, src_offset=4,
                                   dst_offset=0, nbytes=4)
            out = sess.read_array(queue, dst, np.int32)
            assert list(out) == [1, 0, 0, 0]
        finally:
            cl.set_current(None)


# -- the nbytes=0 regression (satellite bugfix) --------------------------------


class TestZeroByteRead:
    def test_synthetic_read_of_zero_bytes_charges_nothing(self):
        nmp = NodeManagementProcess(NodeConfig("n0", ["gpu"], mode="modeled"))
        devices, _ = nmp.handle(Message.request("get_device_ids"), 0.0)
        handle = devices.payload["devices"][0]["handle"]
        ctx = nmp.handle(Message.request("create_context", devices=[handle]),
                         0.0)[0].payload["context"]
        queue = nmp.handle(Message.request("create_queue", context=ctx,
                                           device=handle), 0.0)[0].payload["queue"]
        buf = nmp.handle(Message.request("create_buffer", context=ctx,
                                         size=1 << 20, synthetic=True),
                         0.0)[0].payload["buffer"]
        response, _ready = nmp.handle(
            Message.request("read_buffer", queue=queue, buffer=buf,
                            synthetic_ack=True, nbytes=0),
            0.0,
        )
        assert not response.is_error
        # 0 must mean zero bytes, not "default to the whole buffer"
        assert response.payload["nbytes"] == 0
        assert response.payload["virtual_nbytes"] == 0

    def test_omitted_nbytes_still_reads_whole_buffer(self):
        nmp = NodeManagementProcess(NodeConfig("n0", ["gpu"], mode="modeled"))
        devices, _ = nmp.handle(Message.request("get_device_ids"), 0.0)
        handle = devices.payload["devices"][0]["handle"]
        ctx = nmp.handle(Message.request("create_context", devices=[handle]),
                         0.0)[0].payload["context"]
        queue = nmp.handle(Message.request("create_queue", context=ctx,
                                           device=handle), 0.0)[0].payload["queue"]
        buf = nmp.handle(Message.request("create_buffer", context=ctx,
                                         size=4096, synthetic=True),
                         0.0)[0].payload["buffer"]
        response, _ready = nmp.handle(
            Message.request("read_buffer", queue=queue, buffer=buf,
                            synthetic_ack=True),
            0.0,
        )
        assert response.payload["nbytes"] == 4096


# -- differential: the data plane never changes results ------------------------


class TestDifferential:
    def _run_pipeline(self, dmp):
        """Two kernels forced onto different nodes, chained through one
        buffer: the migration path (p2p or relay) feeds kernel 2."""
        with HaoCLSession(gpu_nodes=2, mode="real", transport="inproc",
                          dmp=dmp) as sess:
            ctx = sess.context()
            dev0, dev1 = sess.devices
            buf = sess.buffer_from(ctx, np.arange(16, dtype=np.int32))
            _write_on_node(sess, ctx, buf, dev0, n=16)
            q1 = _write_on_node(sess, ctx, buf, dev1, n=16)
            out = np.array(sess.read_array(q1, buf, np.int32))
            stats = dict(sess.cl.icd.transfer_stats())
            return out, stats

    def test_results_bit_identical_dmp_on_vs_off(self):
        with_dmp, stats_on = self._run_pipeline(dmp=True)
        without_dmp, stats_off = self._run_pipeline(dmp=False)
        assert with_dmp.tobytes() == without_dmp.tobytes()
        assert stats_on["dmp_bytes_p2p"] > 0
        assert stats_on["bytes_host_relayed"] == 0
        assert stats_off["dmp_bytes_p2p"] == 0
        assert stats_off["bytes_host_relayed"] > 0

    def _serve_round(self, dmp):
        with HaoCLSession(gpu_nodes=2, mode="real", transport="inproc",
                          dmp=dmp) as sess:
            x = np.arange(64, dtype=np.float32)
            with HaoCLService(sess, max_batch=4) as service:
                jobs = [service.submit(_saxpy_job("t%d" % (i % 3), x))
                        for i in range(12)]
                service.run()
                return [np.array(job.result["y"]) for job in jobs]

    def test_serve_results_bit_identical_dmp_on_vs_off(self):
        with_dmp = self._serve_round(dmp=True)
        without_dmp = self._serve_round(dmp=False)
        assert len(with_dmp) == len(without_dmp) == 12
        for a, b in zip(with_dmp, without_dmp):
            assert a.tobytes() == b.tobytes()


# -- eviction vs. prefetch (out-of-core streaming shape) -----------------------


class TestEvictionVsPrefetch:
    def test_protected_prefetch_writes_back_the_dirty_victim(self):
        """End-to-end regression for the streaming audit: a node whose
        table holds exactly two chunk-sized buffers, the live chunk
        protected, a prefetch of the next chunk arriving.  The dirty
        retired chunk is the victim and its written bytes must land in
        the host shadow -- never be dropped."""
        with HaoCLSession(gpu_nodes=1, mode="real", transport="inproc",
                          dmp_capacity_bytes=32) as sess:
            ctx = sess.context()
            dev = sess.devices[0]
            icd = sess.cl.icd
            retired = sess.buffer_from(ctx, np.zeros(4, dtype=np.int32))
            queue = _write_on_node(sess, ctx, retired, dev)
            sess.finish(queue)
            assert retired.fresh == {dev.node_id}  # dirty, node-only copy
            live = sess.buffer_from(ctx, np.arange(4, dtype=np.int32))
            icd.ensure_fresh(live, dev)
            # the table (2 x 16 B) is now full; prefetch chunk k+1 with
            # the executing chunk protected
            incoming = sess.buffer_from(ctx, np.full(4, 7, dtype=np.int32))
            with icd.protecting([live.uid]):
                icd.prefetch(incoming, dev)
            assert icd.dmp_evictions >= 1
            assert icd.dmp_writebacks >= 1
            # the victim was the retired chunk, and its bytes survived
            assert HOST in retired.fresh and dev.node_id not in retired.fresh
            assert list(retired.shadow.view(np.int32)) == [1, 1, 1, 1]
            # the protected live chunk never left the node
            assert dev.node_id in live.fresh
            assert dev.node_id in incoming.fresh

    def test_prefetch_counter_counts_only_real_movement(self):
        with HaoCLSession(gpu_nodes=1, mode="real", transport="inproc") as sess:
            ctx = sess.context()
            dev = sess.devices[0]
            icd = sess.cl.icd
            buf = sess.buffer_from(ctx, np.arange(8, dtype=np.float32))
            icd.prefetch(buf, dev)
            icd.prefetch(buf, dev)  # already fresh: a no-op
            assert icd.dmp_prefetches == 1
