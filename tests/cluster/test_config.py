"""Tests for the cluster configuration file."""

import pytest

from repro.cluster import ClusterConfig, NodeConfig


class TestNodeConfig:
    def test_basic_fields(self):
        node = NodeConfig("gpu0", ["gpu"], port=7100, mode="real")
        assert node.node_id == "gpu0"
        assert node.devices == ["gpu"]
        assert node.port == 7100

    def test_unknown_device_kind(self):
        with pytest.raises(ValueError):
            NodeConfig("x", ["tpu"])

    def test_empty_devices(self):
        with pytest.raises(ValueError):
            NodeConfig("x", [])

    def test_bad_mode(self):
        with pytest.raises(ValueError):
            NodeConfig("x", ["gpu"], mode="fantasy")

    def test_multi_device_node(self):
        node = NodeConfig("fat0", ["cpu", "gpu", "fpga"])
        assert len(node.devices) == 3

    def test_dict_roundtrip(self):
        node = NodeConfig("gpu0", ["gpu"], host="10.0.0.5", port=9000)
        clone = NodeConfig.from_dict(node.to_dict())
        assert clone.host == "10.0.0.5"
        assert clone.port == 9000


class TestClusterConfig:
    def test_build_paper_testbed(self):
        config = ClusterConfig.build(gpu_nodes=16, fpga_nodes=4)
        assert len(config) == 20
        assert config.device_counts() == {"gpu": 16, "fpga": 4}

    def test_build_empty_rejected(self):
        with pytest.raises(ValueError):
            ClusterConfig.build()

    def test_duplicate_node_ids_rejected(self):
        with pytest.raises(ValueError):
            ClusterConfig([NodeConfig("a", ["gpu"]), NodeConfig("a", ["cpu"])])

    def test_node_lookup(self):
        config = ClusterConfig.build(gpu_nodes=2)
        assert config.node("gpu1").devices == ["gpu"]
        with pytest.raises(KeyError):
            config.node("gpu9")

    def test_json_roundtrip(self):
        config = ClusterConfig.build(gpu_nodes=3, fpga_nodes=1, mode="real")
        clone = ClusterConfig.from_json(config.to_json())
        assert len(clone) == 4
        assert clone.node("fpga0").mode == "real"

    def test_file_roundtrip(self, tmp_path):
        config = ClusterConfig.build(gpu_nodes=1, cpu_nodes=2)
        path = tmp_path / "cluster.json"
        config.save(path)
        clone = ClusterConfig.load(path)
        assert clone.device_counts() == {"gpu": 1, "cpu": 2}

    def test_iteration_order_stable(self):
        config = ClusterConfig.build(gpu_nodes=2, fpga_nodes=1)
        ids = [node.node_id for node in config]
        assert ids == ["gpu0", "gpu1", "fpga0"]
