"""Tests for the host process and device registry."""

import pytest

from repro.cluster import ClusterConfig, DeviceRegistry, HostProcess
from repro.ocl.errors import CLError


class TestRegistry:
    def test_register_and_lookup(self):
        reg = DeviceRegistry()
        dev = reg.register("n0", 1, 4, "GPU", {"name": "P4"})
        assert dev.global_id == 1
        assert reg.get(1).node_id == "n0"

    def test_unknown_id(self):
        with pytest.raises(KeyError):
            DeviceRegistry().get(5)

    def test_type_and_node_filters(self):
        reg = DeviceRegistry()
        reg.register("n0", 1, 4, "GPU", {})
        reg.register("n1", 1, 8, "FPGA", {})
        reg.register("n1", 2, 4, "GPU", {})
        assert len(reg.by_type("GPU")) == 2
        assert len(reg.by_node("n1")) == 2
        assert reg.node_ids() == ["n0", "n1"]

    def test_global_ids_unique_and_ordered(self):
        reg = DeviceRegistry()
        for index in range(5):
            reg.register("n%d" % index, 1, 4, "GPU", {})
        assert [d.global_id for d in reg.all()] == [1, 2, 3, 4, 5]


class TestHostProcess:
    @pytest.fixture
    def host(self):
        config = ClusterConfig.build(gpu_nodes=2, fpga_nodes=1)
        with HostProcess.launch(config, transport="inproc") as host:
            yield host

    def test_discovery_builds_registry(self, host):
        assert len(host.registry) == 3
        assert len(host.registry.by_type("GPU")) == 2
        assert len(host.registry.by_type("FPGA")) == 1

    def test_registry_maps_to_nodes(self, host):
        for device in host.registry:
            assert device.node_id in ("gpu0", "gpu1", "fpga0")
            assert device.local_handle >= 1

    def test_call_success(self, host):
        payload = host.call("gpu0", "ping")
        assert payload["node_id"] == "gpu0"

    def test_call_error_becomes_clerror(self, host):
        with pytest.raises(CLError) as err:
            host.call("gpu0", "create_queue", context=42, device=1)
        assert "gpu0" in str(err.value)

    def test_node_stats_covers_all_nodes(self, host):
        stats = host.node_stats()
        assert sorted(stats) == ["fpga0", "gpu0", "gpu1"]

    def test_tcp_transport_end_to_end(self):
        config = ClusterConfig.build(gpu_nodes=1)
        with HostProcess.launch(config, transport="tcp") as host:
            assert len(host.registry) == 1
            assert host.call("gpu0", "ping")["node_id"] == "gpu0"

    def test_sim_transport_advances_clock(self):
        config = ClusterConfig.build(gpu_nodes=1)
        host = HostProcess.launch(config, transport="sim")
        before = host.now_s()
        host.call("gpu0", "ping")
        assert host.now_s() > before
