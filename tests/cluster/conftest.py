"""Deterministic seeding for the cluster sim tests.

Every test in this directory starts from a PRNG state derived from its
own node id, so a test that consults ``random`` or ``np.random``
(directly or through a chaos plan) produces the same run every time and
in any execution order.  The fixture also exposes the seed so failures
can be replayed: re-running the same test re-derives the same seed.
"""

import random
import zlib

import numpy as np
import pytest


@pytest.fixture(autouse=True)
def _deterministic_seed(request):
    seed = zlib.crc32(request.node.nodeid.encode("utf-8"))
    random.seed(seed)
    np.random.seed(seed & 0xFFFFFFFF)
    yield seed
