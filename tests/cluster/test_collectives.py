"""Sharded collectives over the DMP fabric: offset region pushes, halo
exchange rounds and device-side reduce folds.

These are the host-planned primitives the sharded layers chain
together; with the data plane on, every payload byte travels
peer-to-peer and ``bytes_host_relayed`` stays at zero."""

import numpy as np
import pytest

from repro.core import HaoCLSession


def _session(nodes=2, dmp=True):
    return HaoCLSession(gpu_nodes=nodes, mode="real", transport="inproc",
                        dmp=dmp)


def _resident(sess, ctx, data, device):
    """A buffer whose replica is materialised and fresh on ``device``."""
    buf = sess.buffer_from(ctx, data)
    sess.cl.icd.ensure_fresh(buf, device)
    return buf


class TestPushRegion:
    def test_region_moves_p2p_with_dmp_on(self):
        with _session() as sess:
            ctx = sess.context()
            dev0, dev1 = sess.devices
            src_data = np.arange(16, dtype=np.int32)
            src = _resident(sess, ctx, src_data, dev0)
            dst = _resident(sess, ctx, np.zeros(16, dtype=np.int32), dev1)
            icd = sess.cl.icd
            relayed = icd.bytes_host_relayed
            p2p = icd.dmp_bytes_p2p

            # ship elements [4, 8) of src into slots [8, 12) of dst
            icd.push_region(src, dst, dev0.node_id, dev1.node_id,
                            nbytes=16, src_offset=16, dst_offset=32)

            assert icd.dmp_bytes_p2p == p2p + 16
            assert icd.bytes_host_relayed == relayed
            assert dst.fresh == {dev1.node_id}
            queue = sess.queue(ctx, dev1)
            out = sess.read_array(queue, dst, np.int32)
            assert list(out[8:12]) == [4, 5, 6, 7]
            assert not out[:8].any() and not out[12:].any()

    def test_fallback_relays_through_host_when_dmp_off(self):
        with _session(dmp=False) as sess:
            ctx = sess.context()
            dev0, dev1 = sess.devices
            src = _resident(sess, ctx, np.arange(8, dtype=np.int32), dev0)
            dst = _resident(sess, ctx, np.zeros(8, dtype=np.int32), dev1)
            icd = sess.cl.icd

            icd.push_region(src, dst, dev0.node_id, dev1.node_id, nbytes=8)

            assert icd.dmp_bytes_p2p == 0
            assert icd.bytes_host_relayed == 8
            queue = sess.queue(ctx, dev1)
            out = sess.read_array(queue, dst, np.int32)
            assert list(out[:2]) == [0, 1]

    def test_zero_bytes_is_a_no_op(self):
        with _session() as sess:
            ctx = sess.context()
            dev0, dev1 = sess.devices
            src = _resident(sess, ctx, np.arange(4, dtype=np.int32), dev0)
            dst = _resident(sess, ctx, np.zeros(4, dtype=np.int32), dev1)
            before = sess.cl.icd.transfer_count
            sess.cl.icd.push_region(src, dst, dev0.node_id, dev1.node_id, 0)
            assert sess.cl.icd.transfer_count == before


class TestExchangeHalos:
    def test_round_moves_every_region_p2p(self):
        with _session() as sess:
            ctx = sess.context()
            dev0, dev1 = sess.devices
            left = _resident(sess, ctx,
                             np.arange(8, dtype=np.float32), dev0)
            right = _resident(sess, ctx,
                              np.arange(8, 16, dtype=np.float32), dev1)
            icd = sess.cl.icd

            # swap one 8-byte halo each way across the shard boundary
            moved = icd.exchange_halos([
                {"src": left, "dst": right,
                 "src_node": dev0.node_id, "dst_node": dev1.node_id,
                 "nbytes": 8, "src_offset": 24, "dst_offset": 0},
                {"src": right, "dst": left,
                 "src_node": dev1.node_id, "dst_node": dev0.node_id,
                 "nbytes": 8, "src_offset": 8, "dst_offset": 24},
            ])

            assert moved == 16
            assert icd.dmp_halo_exchanges == 2
            assert icd.dmp_halo_bytes == 16
            assert icd.bytes_host_relayed == 0
            out = sess.read_array(sess.queue(ctx, dev1), right, np.float32)
            assert list(out[:2]) == [6.0, 7.0]  # left's last two floats
            out = sess.read_array(sess.queue(ctx, dev0), left, np.float32)
            assert list(out[6:]) == [10.0, 11.0]


class TestShardHaloRefresh:
    """The session-level halo refresh between sharded stencil launches:
    owners push their boundary strips into neighbouring widened views."""

    def _cfd_launch(self, sess, ncells=32, halo=2):
        from repro.core.sharding import Distribution
        from repro.workloads.base import load_kernel_source

        ctx = sess.context()
        dist = Distribution.block(halo=halo)
        rng = np.random.default_rng(1)
        variables = np.empty((ncells, 5), dtype=np.float32)
        variables[:, 0] = rng.random(ncells) + 1.0
        variables[:, 1:4] = (rng.random((ncells, 3)) - 0.5) * 0.2
        variables[:, 4] = rng.random(ncells) + 10.0
        variables = variables.reshape(-1)
        areas = (rng.random(ncells) + 0.5).astype(np.float32)
        b_var = sess.buffer_from(ctx, variables, distribution=dist)
        b_areas = sess.buffer_from(ctx, areas, distribution=dist)
        b_step = sess.buffer_from(ctx, np.zeros(ncells, dtype=np.float32),
                                  distribution=dist)
        prog = sess.program(ctx, load_kernel_source("cfd.cl"))
        queue = sess.queue(ctx, sess.devices[0])
        kern = sess.kernel(prog, "cfd_step_factor", b_var, b_areas, b_step,
                           np.int32(ncells))
        sess.enqueue(queue, kern, (ncells,))
        sess.finish(queue)
        return ctx, b_var, b_step

    def test_refresh_rides_the_fabric(self):
        with _session() as sess:
            ncells, halo = 32, 2
            ctx, b_var, b_step = self._cfd_launch(sess, ncells, halo)
            icd = sess.cl.icd
            relayed = icd.bytes_host_relayed

            # variables (read widened): 2 strips of halo * 20 B/cell
            moved = sess.exchange_shard_halos(ctx, b_var, ncells,
                                              written=False)
            assert moved == 2 * halo * 20
            # step_factors (written unwidened): 2 strips of halo * 4 B
            assert sess.exchange_shard_halos(ctx, b_step, ncells) \
                == 2 * halo * 4
            assert icd.dmp_halo_exchanges == 4
            assert icd.dmp_halo_bytes == moved + 2 * halo * 4
            assert icd.bytes_host_relayed == relayed

    def test_zero_halo_is_a_no_op(self):
        with _session() as sess:
            from repro.core.sharding import Distribution

            ctx = sess.context()
            buf = sess.buffer_from(ctx, np.zeros(16, dtype=np.float32),
                                   distribution=Distribution.block())
            assert sess.exchange_shard_halos(ctx, buf, 16) == 0
            assert sess.cl.icd.dmp_halo_exchanges == 0


class TestReduceInto:
    @pytest.mark.parametrize("op,fold", [
        ("sum", lambda a, b: a + b),
        ("max", np.maximum),
        ("min", np.minimum),
    ])
    def test_folds_partials_device_side(self, op, fold):
        with _session(nodes=3) as sess:
            ctx = sess.context()
            dev0 = sess.devices[0]
            rng = np.random.default_rng(3)
            base = rng.standard_normal(16).astype(np.float32)
            parts = [rng.standard_normal(16).astype(np.float32)
                     for _ in range(2)]
            dst = _resident(sess, ctx, base, dev0)
            sources = [_resident(sess, ctx, part, dev)
                       for part, dev in zip(parts, sess.devices[1:])]
            icd = sess.cl.icd

            icd.reduce_into(dst, sources, dev0, op=op)

            assert icd.dmp_reduces == 2
            assert icd.dmp_reduce_bytes == 2 * dst.size
            assert dst.fresh == {dev0.node_id}
            expected = fold(fold(base, parts[0]), parts[1])
            out = sess.read_array(sess.queue(ctx, dev0), dst, np.float32)
            assert np.array_equal(out, expected)
