"""Tests for the Node Management Process over a direct handler interface."""

import numpy as np
import pytest

from repro.cluster import ClusterConfig, NodeConfig, NodeManagementProcess
from repro.ocl import enums
from repro.transport.message import Message

SRC = """
__kernel void add1(__global int* a, int n) {
    int i = get_global_id(0);
    if (i < n) a[i] = a[i] + 1;
}
"""


@pytest.fixture
def nmp():
    return NodeManagementProcess(NodeConfig("n0", ["gpu"], mode="modeled"))


def call(nmp, method, now_s=0.0, **payload):
    response, ready = nmp.handle(Message.request(method, **payload), now_s)
    assert not response.is_error, response.payload
    return response.payload, ready


def call_err(nmp, method, **payload):
    response, _ready = nmp.handle(Message.request(method, **payload), 0.0)
    assert response.is_error
    return response.payload


def build_kernel(nmp):
    devices, _ = call(nmp, "get_device_ids")
    handle = devices["devices"][0]["handle"]
    ctx, _ = call(nmp, "create_context", devices=[handle])
    queue, _ = call(nmp, "create_queue", context=ctx["context"], device=handle)
    prog, _ = call(nmp, "build_program", context=ctx["context"], source=SRC)
    kern, _ = call(nmp, "create_kernel", program=prog["program"], name="add1")
    return ctx["context"], queue["queue"], kern["kernel"]


class TestDiscovery:
    def test_ping(self, nmp):
        payload, _ = call(nmp, "ping")
        assert payload["node_id"] == "n0"
        assert payload["mode"] == "modeled"

    def test_get_device_ids(self, nmp):
        payload, _ = call(nmp, "get_device_ids")
        (device,) = payload["devices"]
        assert device["type_name"] == "GPU"
        assert device["info"]["name"] == "NVIDIA Tesla P4"

    def test_device_type_filter(self, nmp):
        payload, _ = call(nmp, "get_device_ids",
                          device_type=enums.CL_DEVICE_TYPE_CPU)
        assert payload["devices"] == []

    def test_unknown_method(self, nmp):
        error = call_err(nmp, "frobnicate")
        assert error["code"] == enums.CL_INVALID_OPERATION

    def test_multi_device_node(self):
        nmp = NodeManagementProcess(NodeConfig("fat", ["cpu", "gpu", "fpga"]))
        payload, _ = call(nmp, "get_device_ids")
        names = sorted(d["type_name"] for d in payload["devices"])
        assert names == ["CPU", "FPGA", "GPU"]


class TestLifecycle:
    def test_full_kernel_roundtrip(self, nmp):
        ctx, queue, kern = build_kernel(nmp)
        buf, _ = call(nmp, "create_buffer", context=ctx, size=16)
        call(nmp, "write_buffer", queue=queue, buffer=buf["buffer"],
             data=np.arange(4, dtype=np.int32))
        call(nmp, "set_kernel_arg", kernel=kern, index=0, buffer=buf["buffer"])
        call(nmp, "set_kernel_arg", kernel=kern, index=1, value=4)
        call(nmp, "enqueue_ndrange", queue=queue, kernel=kern, global_size=[4])
        payload, _ = call(nmp, "read_buffer", queue=queue, buffer=buf["buffer"])
        out = np.frombuffer(bytes(payload["data"]), dtype=np.int32)
        assert list(out) == [1, 2, 3, 4]

    def test_bad_handle_is_cl_error(self, nmp):
        error = call_err(nmp, "create_queue", context=999, device=1)
        assert error["code"] == enums.CL_INVALID_VALUE

    def test_build_error_reported(self, nmp):
        ctx, _ = call(nmp, "create_context", devices=[
            call(nmp, "get_device_ids")[0]["devices"][0]["handle"]
        ])
        error = call_err(nmp, "build_program", context=ctx["context"],
                         source="__kernel void broken( {")
        assert error["code"] == enums.CL_BUILD_PROGRAM_FAILURE

    def test_release_frees_handle(self, nmp):
        ctx, queue, kern = build_kernel(nmp)
        buf, _ = call(nmp, "create_buffer", context=ctx, size=16)
        call(nmp, "release", kind="buffer", handle=buf["buffer"])
        error = call_err(nmp, "read_buffer", queue=queue, buffer=buf["buffer"])
        assert error["code"] == enums.CL_INVALID_VALUE

    def test_kernel_fault_becomes_error_response(self, nmp):
        ctx, queue, _ = build_kernel(nmp)
        prog, _ = call(nmp, "build_program", context=ctx,
                       source="__kernel void oob(__global int* a) { a[9999] = 1; }")
        kern, _ = call(nmp, "create_kernel", program=prog["program"], name="oob")
        handle = kern["kernel"]
        buf, _ = call(nmp, "create_buffer", context=ctx, size=4)
        call(nmp, "set_kernel_arg", kernel=handle, index=0, buffer=buf["buffer"])
        error = call_err(nmp, "enqueue_ndrange", queue=queue, kernel=handle,
                         global_size=[1])
        assert "out-of-bounds" in error["message"]


class TestDeviceTimeline:
    def test_enqueue_acks_immediately_but_extends_ready(self, nmp):
        ctx, queue, kern = build_kernel(nmp)
        buf, _ = call(nmp, "create_buffer", context=ctx, size=1 << 20,
                      synthetic=True)
        call(nmp, "set_kernel_arg", kernel=kern, index=0, buffer=buf["buffer"])
        call(nmp, "set_kernel_arg", kernel=kern, index=1, value=200_000)
        payload, ready = call(nmp, "enqueue_ndrange", queue=queue, kernel=kern,
                              global_size=[200_000], now_s=1.0)
        assert ready == 1.0  # ack immediate
        assert payload["duration_s"] > 0
        _fin, fin_ready = call(nmp, "finish", queue=queue, now_s=1.0)
        assert fin_ready == pytest.approx(1.0 + payload["duration_s"])

    def test_back_to_back_kernels_queue_up(self, nmp):
        ctx, queue, kern = build_kernel(nmp)
        buf, _ = call(nmp, "create_buffer", context=ctx, size=1 << 20,
                      synthetic=True)
        call(nmp, "set_kernel_arg", kernel=kern, index=0, buffer=buf["buffer"])
        call(nmp, "set_kernel_arg", kernel=kern, index=1, value=200_000)
        p1, _ = call(nmp, "enqueue_ndrange", queue=queue, kernel=kern,
                     global_size=[200_000], now_s=0.0)
        p2, _ = call(nmp, "enqueue_ndrange", queue=queue, kernel=kern,
                     global_size=[200_000], now_s=0.0)
        _fin, ready = call(nmp, "finish", queue=queue, now_s=0.0)
        assert ready == pytest.approx(p1["duration_s"] + p2["duration_s"])

    def test_read_waits_for_drain(self, nmp):
        ctx, queue, kern = build_kernel(nmp)
        buf, _ = call(nmp, "create_buffer", context=ctx, size=1 << 20,
                      synthetic=True)
        call(nmp, "set_kernel_arg", kernel=kern, index=0, buffer=buf["buffer"])
        call(nmp, "set_kernel_arg", kernel=kern, index=1, value=500_000)
        p, _ = call(nmp, "enqueue_ndrange", queue=queue, kernel=kern,
                    global_size=[500_000])
        _payload, ready = call(nmp, "read_buffer", queue=queue,
                               buffer=buf["buffer"], synthetic_ack=True)
        assert ready >= p["duration_s"]

    def test_write_synthetic_charges_dma(self, nmp):
        ctx, queue, _ = build_kernel(nmp)
        buf, _ = call(nmp, "create_buffer", context=ctx, size=100 << 20,
                      synthetic=True)
        payload, _ = call(nmp, "write_synthetic", queue=queue,
                          buffer=buf["buffer"], nbytes=100 << 20)
        assert payload["duration_s"] > 0.005  # 100MB over ~12GB/s PCIe


class TestMultiUser:
    def test_exclusive_claim_blocks_other_user(self, nmp):
        devices, _ = call(nmp, "get_device_ids")
        handle = devices["devices"][0]["handle"]
        call(nmp, "acquire_device", device=handle, user="alice", shared=False)
        error = call_err(nmp, "acquire_device", device=handle, user="bob",
                         shared=False)
        assert error["code"] == enums.CL_DEVICE_NOT_AVAILABLE

    def test_shared_claims_coexist(self, nmp):
        devices, _ = call(nmp, "get_device_ids")
        handle = devices["devices"][0]["handle"]
        call(nmp, "acquire_device", device=handle, user="alice", shared=True)
        payload, _ = call(nmp, "acquire_device", device=handle, user="bob",
                          shared=True)
        assert payload["granted"]

    def test_release_unblocks(self, nmp):
        devices, _ = call(nmp, "get_device_ids")
        handle = devices["devices"][0]["handle"]
        call(nmp, "acquire_device", device=handle, user="alice", shared=False)
        call(nmp, "release_device", device=handle, user="alice")
        payload, _ = call(nmp, "acquire_device", device=handle, user="bob",
                          shared=False)
        assert payload["granted"]

    def test_enqueue_respects_exclusive_claim(self, nmp):
        ctx, queue, kern = build_kernel(nmp)
        devices, _ = call(nmp, "get_device_ids")
        handle = devices["devices"][0]["handle"]
        call(nmp, "acquire_device", device=handle, user="alice", shared=False)
        buf, _ = call(nmp, "create_buffer", context=ctx, size=16)
        call(nmp, "set_kernel_arg", kernel=kern, index=0, buffer=buf["buffer"])
        call(nmp, "set_kernel_arg", kernel=kern, index=1, value=4)
        error = call_err(nmp, "enqueue_ndrange", queue=queue, kernel=kern,
                         global_size=[4], user="bob")
        assert error["code"] == enums.CL_DEVICE_NOT_AVAILABLE


class TestStats:
    def test_node_stats_structure(self, nmp):
        ctx, queue, kern = build_kernel(nmp)
        buf, _ = call(nmp, "create_buffer", context=ctx, size=16)
        call(nmp, "set_kernel_arg", kernel=kern, index=0, buffer=buf["buffer"])
        call(nmp, "set_kernel_arg", kernel=kern, index=1, value=4)
        call(nmp, "enqueue_ndrange", queue=queue, kernel=kern, global_size=[4])
        payload, _ = call(nmp, "node_stats")
        assert payload["node_id"] == "n0"
        assert payload["kernels"]["add1"]["count"] == 1
        assert payload["kernels"]["add1"]["items"] == 4
        assert payload["messages"] > 0
