"""Tests for the OpenCL runtime entity model and operations."""

import numpy as np
import pytest

from repro.ocl import CLRuntime, enums, gpu_tesla_p4, fpga_vu9p
from repro.ocl.errors import CLError
from repro.ocl.fastpath import FastPathRegistry
from repro.ocl.runtime import Device

SRC = """
__kernel void dbl(__global float* a, int n) {
    int i = get_global_id(0);
    if (i < n) a[i] = a[i] * 2.0f;
}
__kernel void fill(__global int* a, int v) {
    a[get_global_id(0)] = v;
}
"""


@pytest.fixture
def rt():
    return CLRuntime([Device(gpu_tesla_p4(), mode="real")],
                     fastpaths=FastPathRegistry())


@pytest.fixture
def modeled_rt():
    return CLRuntime([Device(gpu_tesla_p4(), mode="modeled")],
                     fastpaths=FastPathRegistry())


def setup_kernel(rt, name="dbl"):
    dev = rt.get_devices()[0]
    ctx = rt.create_context([dev])
    q = rt.create_command_queue(ctx, dev, enums.CL_QUEUE_PROFILING_ENABLE)
    prog = rt.build_program(rt.create_program_with_source(ctx, SRC))
    return ctx, q, rt.create_kernel(prog, name)


class TestDiscovery:
    def test_platform_listing(self, rt):
        (platform,) = rt.get_platforms()
        assert platform.devices

    def test_device_type_filter(self, rt):
        devices = rt.get_devices(device_type=enums.CL_DEVICE_TYPE_GPU)
        assert len(devices) == 1
        with pytest.raises(CLError) as err:
            rt.get_devices(device_type=enums.CL_DEVICE_TYPE_CPU)
        assert err.value.code == enums.CL_DEVICE_NOT_FOUND

    def test_device_info(self, rt):
        dev = rt.get_devices()[0]
        assert dev.info(enums.CL_DEVICE_NAME) == "NVIDIA Tesla P4"
        assert dev.info(enums.CL_DEVICE_MAX_COMPUTE_UNITS) == 20

    def test_bad_info_param(self, rt):
        with pytest.raises(CLError):
            rt.get_devices()[0].info(0xDEAD)


class TestRefCounting:
    def test_release_destroys_at_zero(self, rt):
        ctx = rt.create_context(rt.get_devices())
        buf = rt.create_buffer(ctx, enums.CL_MEM_READ_WRITE, 16)
        buf.retain()
        assert buf.release() == 1
        assert buf.alive
        assert buf.release() == 0
        assert not buf.alive

    def test_release_after_zero_raises(self, rt):
        ctx = rt.create_context(rt.get_devices())
        buf = rt.create_buffer(ctx, enums.CL_MEM_READ_WRITE, 16)
        buf.release()
        with pytest.raises(CLError):
            buf.release()


class TestBuffers:
    def test_host_data_initialisation(self, rt):
        ctx = rt.create_context(rt.get_devices())
        buf = rt.create_buffer(ctx, enums.CL_MEM_READ_WRITE, 16,
                               host_data=np.arange(4, dtype=np.int32))
        assert list(buf.read().view(np.int32)) == [0, 1, 2, 3]

    def test_zero_size_rejected(self, rt):
        ctx = rt.create_context(rt.get_devices())
        with pytest.raises(CLError) as err:
            rt.create_buffer(ctx, enums.CL_MEM_READ_WRITE, 0)
        assert err.value.code == enums.CL_INVALID_BUFFER_SIZE

    def test_oversized_host_data_rejected(self, rt):
        ctx = rt.create_context(rt.get_devices())
        with pytest.raises(CLError):
            rt.create_buffer(ctx, enums.CL_MEM_READ_WRITE, 4,
                             host_data=np.arange(4, dtype=np.int32))

    def test_write_read_offsets(self, rt):
        ctx = rt.create_context(rt.get_devices())
        buf = rt.create_buffer(ctx, enums.CL_MEM_READ_WRITE, 16)
        buf.write(np.array([7], dtype=np.int32), offset=8)
        assert buf.read(4, offset=8).view(np.int32)[0] == 7

    def test_synthetic_buffer_reads_zeros(self, rt):
        ctx = rt.create_context(rt.get_devices())
        buf = rt.create_buffer(ctx, enums.CL_MEM_READ_WRITE, 1 << 30,
                               synthetic=True)
        assert buf.memory is None
        assert not buf.read(16).any()

    def test_copy_buffer(self, rt):
        ctx = rt.create_context(rt.get_devices())
        q = rt.create_command_queue(ctx, rt.get_devices()[0])
        src = rt.create_buffer(ctx, enums.CL_MEM_READ_WRITE, 16,
                               host_data=np.arange(4, dtype=np.int32))
        dst = rt.create_buffer(ctx, enums.CL_MEM_READ_WRITE, 16)
        rt.enqueue_copy_buffer(q, src, dst)
        assert list(dst.read().view(np.int32)) == [0, 1, 2, 3]


class TestPrograms:
    def test_build_failure_sets_log(self, rt):
        ctx = rt.create_context(rt.get_devices())
        prog = rt.create_program_with_source(ctx, "__kernel void broken( {")
        with pytest.raises(CLError) as err:
            rt.build_program(prog)
        assert err.value.code == enums.CL_BUILD_PROGRAM_FAILURE
        assert prog.build_status == enums.CL_BUILD_ERROR
        assert prog.build_log

    def test_kernel_from_unbuilt_program(self, rt):
        ctx = rt.create_context(rt.get_devices())
        prog = rt.create_program_with_source(ctx, SRC)
        with pytest.raises(CLError) as err:
            rt.create_kernel(prog, "dbl")
        assert err.value.code == enums.CL_INVALID_PROGRAM_EXECUTABLE

    def test_unknown_kernel_name(self, rt):
        ctx = rt.create_context(rt.get_devices())
        prog = rt.build_program(rt.create_program_with_source(ctx, SRC))
        with pytest.raises(CLError) as err:
            rt.create_kernel(prog, "nope")
        assert err.value.code == enums.CL_INVALID_KERNEL_NAME

    def test_build_options_macros(self, rt):
        ctx = rt.create_context(rt.get_devices())
        prog = rt.create_program_with_source(
            ctx, "__kernel void k(__global int* a) { a[0] = VALUE; }"
        )
        rt.build_program(prog, "-DVALUE=42")
        q = rt.create_command_queue(ctx, rt.get_devices()[0])
        buf = rt.create_buffer(ctx, enums.CL_MEM_READ_WRITE, 4)
        kern = rt.create_kernel(prog, "k")
        kern.set_arg(0, buf)
        rt.enqueue_nd_range_kernel(q, kern, (1,))
        assert buf.read().view(np.int32)[0] == 42


class TestKernelLaunch:
    def test_execution_and_profiling(self, rt):
        ctx, q, kern = setup_kernel(rt)
        buf = rt.create_buffer(ctx, enums.CL_MEM_READ_WRITE, 32,
                               host_data=np.arange(8, dtype=np.float32))
        kern.set_arg(0, buf)
        kern.set_arg(1, 8)
        event = rt.enqueue_nd_range_kernel(q, kern, (8,))
        assert list(buf.read().view(np.float32)) == [0, 2, 4, 6, 8, 10, 12, 14]
        start = event.profiling(enums.CL_PROFILING_COMMAND_START)
        end = event.profiling(enums.CL_PROFILING_COMMAND_END)
        assert end >= start

    def test_unset_args_rejected(self, rt):
        ctx, q, kern = setup_kernel(rt)
        kern.set_arg(1, 8)
        with pytest.raises(CLError) as err:
            rt.enqueue_nd_range_kernel(q, kern, (8,))
        assert err.value.code == enums.CL_INVALID_KERNEL_ARGS

    def test_arg_index_out_of_range(self, rt):
        _ctx, _q, kern = setup_kernel(rt)
        with pytest.raises(CLError) as err:
            kern.set_arg(5, 1)
        assert err.value.code == enums.CL_INVALID_ARG_INDEX

    def test_scalar_for_pointer_rejected(self, rt):
        _ctx, _q, kern = setup_kernel(rt)
        with pytest.raises(CLError) as err:
            kern.set_arg(0, 3)
        assert err.value.code == enums.CL_INVALID_ARG_VALUE

    def test_indivisible_local_size_rejected(self, rt):
        ctx, q, kern = setup_kernel(rt)
        buf = rt.create_buffer(ctx, enums.CL_MEM_READ_WRITE, 32)
        kern.set_arg(0, buf)
        kern.set_arg(1, 8)
        with pytest.raises(CLError) as err:
            rt.enqueue_nd_range_kernel(q, kern, (8,), (3,))
        assert err.value.code == enums.CL_INVALID_WORK_GROUP_SIZE

    def test_oversized_work_group_rejected(self, rt):
        ctx, q, kern = setup_kernel(rt)
        buf = rt.create_buffer(ctx, enums.CL_MEM_READ_WRITE, 32)
        kern.set_arg(0, buf)
        kern.set_arg(1, 8)
        with pytest.raises(CLError):
            rt.enqueue_nd_range_kernel(q, kern, (4096,), (2048,))

    def test_global_offset_dim_mismatch_rejected(self, rt):
        ctx, q, kern = setup_kernel(rt)
        buf = rt.create_buffer(ctx, enums.CL_MEM_READ_WRITE, 32)
        kern.set_arg(0, buf)
        kern.set_arg(1, 8)
        with pytest.raises(CLError) as err:
            rt.enqueue_nd_range_kernel(q, kern, (8,), None, (1, 1))
        assert err.value.code == enums.CL_INVALID_GLOBAL_OFFSET

    def test_negative_global_offset_rejected(self, rt):
        ctx, q, kern = setup_kernel(rt)
        buf = rt.create_buffer(ctx, enums.CL_MEM_READ_WRITE, 32)
        kern.set_arg(0, buf)
        kern.set_arg(1, 8)
        with pytest.raises(CLError) as err:
            rt.enqueue_nd_range_kernel(q, kern, (8,), None, (-2,))
        assert err.value.code == enums.CL_INVALID_GLOBAL_OFFSET

    def test_fractional_global_offset_rejected(self, rt):
        ctx, q, kern = setup_kernel(rt)
        buf = rt.create_buffer(ctx, enums.CL_MEM_READ_WRITE, 32)
        kern.set_arg(0, buf)
        kern.set_arg(1, 8)
        with pytest.raises(CLError) as err:
            rt.enqueue_nd_range_kernel(q, kern, (8,), None, (1.5,))
        assert err.value.code == enums.CL_INVALID_GLOBAL_OFFSET

    def test_valid_global_offset_shifts_the_index_space(self, rt):
        ctx, q, kern = setup_kernel(rt, "fill")
        buf = rt.create_buffer(
            ctx, enums.CL_MEM_READ_WRITE, 32,
            host_data=np.zeros(8, dtype=np.int32))
        kern.set_arg(0, buf)
        kern.set_arg(1, 9)
        rt.enqueue_nd_range_kernel(q, kern, (4,), None, (4,))
        assert list(buf.read().view(np.int32)) == [0, 0, 0, 0, 9, 9, 9, 9]

    def test_enqueue_task_is_single_item(self, rt):
        ctx = rt.create_context(rt.get_devices())
        q = rt.create_command_queue(ctx, rt.get_devices()[0])
        prog = rt.build_program(rt.create_program_with_source(ctx, SRC))
        kern = rt.create_kernel(prog, "fill")
        buf = rt.create_buffer(ctx, enums.CL_MEM_READ_WRITE, 4)
        kern.set_arg(0, buf)
        kern.set_arg(1, 9)
        rt.enqueue_task(q, kern)
        assert buf.read().view(np.int32)[0] == 9


class TestModeledMode:
    def test_modeled_executes_real_buffers(self, modeled_rt):
        rt = modeled_rt
        ctx, q, kern = setup_kernel(rt)
        buf = rt.create_buffer(ctx, enums.CL_MEM_READ_WRITE, 32,
                               host_data=np.arange(8, dtype=np.float32))
        kern.set_arg(0, buf)
        kern.set_arg(1, 8)
        rt.enqueue_nd_range_kernel(q, kern, (8,))
        assert list(buf.read().view(np.float32)) == [0, 2, 4, 6, 8, 10, 12, 14]

    def test_modeled_skips_synthetic_buffers(self, modeled_rt):
        rt = modeled_rt
        ctx, q, kern = setup_kernel(rt)
        buf = rt.create_buffer(ctx, enums.CL_MEM_READ_WRITE, 400 << 20,
                               synthetic=True)
        kern.set_arg(0, buf)
        kern.set_arg(1, 100_000_000)
        event = rt.enqueue_nd_range_kernel(q, kern, (100_000_000,))
        assert event.duration_s > 1e-4  # modeled, not executed

    def test_modeled_duration_scales_with_items(self, modeled_rt):
        rt = modeled_rt
        ctx, q, kern = setup_kernel(rt)
        buf = rt.create_buffer(ctx, enums.CL_MEM_READ_WRITE, 1 << 30,
                               synthetic=True)
        kern.set_arg(0, buf)
        kern.set_arg(1, 1_000_000)
        e1 = rt.enqueue_nd_range_kernel(q, kern, (1_000_000,))
        e2 = rt.enqueue_nd_range_kernel(q, kern, (10_000_000,))
        assert e2.duration_s > 5 * e1.duration_s

    def test_device_clock_accumulates(self, modeled_rt):
        rt = modeled_rt
        dev = rt.get_devices()[0]
        ctx, q, kern = setup_kernel(rt)
        buf = rt.create_buffer(ctx, enums.CL_MEM_READ_WRITE, 1 << 20,
                               synthetic=True)
        kern.set_arg(0, buf)
        kern.set_arg(1, 1000)
        before = dev.clock_s
        rt.enqueue_nd_range_kernel(q, kern, (1000,))
        assert dev.clock_s > before
        assert dev.busy_s > 0

    def test_modeled_transfer_time(self, modeled_rt):
        rt = modeled_rt
        ctx = rt.create_context(rt.get_devices())
        q = rt.create_command_queue(ctx, rt.get_devices()[0])
        buf = rt.create_buffer(ctx, enums.CL_MEM_READ_WRITE, 1 << 20)
        event = rt.enqueue_write_buffer(q, buf, np.zeros(1 << 20, np.uint8))
        model = rt.get_devices()[0].model
        assert event.duration_s == pytest.approx(
            model.transfer_time(1 << 20), rel=0.01
        )


class TestFastPath:
    def test_fastpath_used_instead_of_interpreter(self):
        reg = FastPathRegistry()
        calls = []

        @reg.register("dbl")
        def fast_dbl(args, gsize, lsize):
            a, n = args
            a[: int(n)] *= 2
            calls.append(gsize)

        rt = CLRuntime([Device(gpu_tesla_p4(), mode="real")], fastpaths=reg)
        ctx, q, kern = setup_kernel(rt)
        buf = rt.create_buffer(ctx, enums.CL_MEM_READ_WRITE, 32,
                               host_data=np.arange(8, dtype=np.float32))
        kern.set_arg(0, buf)
        kern.set_arg(1, 8)
        rt.enqueue_nd_range_kernel(q, kern, (8,))
        assert calls == [(8,)]
        assert list(buf.read().view(np.float32)) == [0, 2, 4, 6, 8, 10, 12, 14]

    def test_registry_decorator_and_lookup(self):
        reg = FastPathRegistry()

        @reg.register("k")
        def impl(args, gsize, lsize):
            pass

        assert "k" in reg
        assert reg.lookup("k") is impl
        reg.unregister("k")
        assert reg.lookup("k") is None
