"""Three-tier kernel dispatch in CLRuntime.

Covers the tier order (fastpath > vectorized > interpreter), the
process-wide compile cache (a second launch of the same kernel must not
recompile), per-tier launch counters, and the opt-outs
(``vectorize=False`` runtimes, the ``-haocl-no-vectorize`` build flag).
"""

import numpy as np
import pytest

from repro.clc.vectorize import VectorizeCache
from repro.ocl import enums
from repro.ocl.device import model_by_name
from repro.ocl.fastpath import FastPathRegistry
from repro.ocl.runtime import CLRuntime, Device

SAXPY = """
__kernel void saxpy(__global float* y, __global const float* x,
                    float a, int n) {
    int i = get_global_id(0);
    if (i < n) y[i] = y[i] + a * x[i];
}
"""

TILED = """
__kernel void redux(__global int* out) {
    __local int tile[4];
    tile[get_local_id(0)] = (int)get_global_id(0);
    barrier(1);
    out[get_global_id(0)] = tile[0];
}
"""

N = 64


def make_runtime(fastpaths=None, vectorize=True, cache=None):
    device = Device(model_by_name("gpu"), mode="real")
    runtime = CLRuntime(
        [device],
        fastpaths=fastpaths if fastpaths is not None else FastPathRegistry(),
        vectorize=vectorize,
        vectorize_cache=cache if cache is not None else VectorizeCache(),
    )
    context = runtime.create_context([device])
    queue = runtime.create_command_queue(context, device)
    return runtime, context, queue


def launch_saxpy(runtime, context, queue, options=""):
    program = runtime.build_program(
        runtime.create_program_with_source(context, SAXPY), options)
    kernel = runtime.create_kernel(program, "saxpy")
    y = runtime.create_buffer(context, enums.CL_MEM_READ_WRITE, N * 4,
                              host_data=np.ones(N, dtype=np.float32))
    x = runtime.create_buffer(context, enums.CL_MEM_READ_ONLY, N * 4,
                              host_data=np.ones(N, dtype=np.float32))
    kernel.set_arg(0, y)
    kernel.set_arg(1, x)
    kernel.set_arg(2, np.float32(2.0))
    kernel.set_arg(3, np.int32(N))
    event = runtime.enqueue_nd_range_kernel(queue, kernel, (N,))
    return event, y


class TestTierOrder:
    def test_vectorized_when_no_fastpath(self):
        runtime, context, queue = make_runtime()
        event, y = launch_saxpy(runtime, context, queue)
        assert event.tier == "vectorized"
        assert runtime.tier_counts["vectorized"] == 1
        assert np.allclose(y.read().view(np.float32), 3.0)

    def test_fastpath_wins_over_vectorized(self):
        registry = FastPathRegistry()

        @registry.register("saxpy")
        def _fast(args, gsize, lsize):
            y, x, a, n = args
            n = int(n)
            y[:n] += np.float32(a) * x[:n]

        runtime, context, queue = make_runtime(fastpaths=registry)
        event, y = launch_saxpy(runtime, context, queue)
        assert event.tier == "fastpath"
        assert runtime.tier_counts == {
            "fastpath": 1, "vectorized": 0, "interpreter": 0, "modeled": 0}

    def test_interpreter_for_rejected_kernel(self):
        runtime, context, queue = make_runtime()
        program = runtime.build_program(
            runtime.create_program_with_source(context, TILED))
        kernel = runtime.create_kernel(program, "redux")
        out = runtime.create_buffer(context, enums.CL_MEM_READ_WRITE, 8 * 4)
        kernel.set_arg(0, out)
        event = runtime.enqueue_nd_range_kernel(queue, kernel, (8,), (4,))
        assert event.tier == "interpreter"
        assert runtime.vectorize_cache.stats()["rejects"] == 1

    def test_modeled_synthetic_launch_counts_as_modeled(self):
        device = Device(model_by_name("gpu"), mode="modeled")
        runtime = CLRuntime([device], fastpaths=FastPathRegistry(),
                            vectorize_cache=VectorizeCache())
        context = runtime.create_context([device])
        queue = runtime.create_command_queue(context, device)
        program = runtime.build_program(
            runtime.create_program_with_source(context, SAXPY))
        kernel = runtime.create_kernel(program, "saxpy")
        y = runtime.create_buffer(context, enums.CL_MEM_READ_WRITE, N * 4,
                                  synthetic=True)
        x = runtime.create_buffer(context, enums.CL_MEM_READ_ONLY, N * 4,
                                  synthetic=True)
        kernel.set_arg(0, y)
        kernel.set_arg(1, x)
        kernel.set_arg(2, 2.0)
        kernel.set_arg(3, N)
        event = runtime.enqueue_nd_range_kernel(queue, kernel, (N,))
        assert event.tier == "modeled"
        assert runtime.tier_counts["modeled"] == 1


class TestCompileCache:
    def test_second_launch_zero_recompiles(self):
        cache = VectorizeCache()
        runtime, context, queue = make_runtime(cache=cache)
        launch_saxpy(runtime, context, queue)
        assert cache.stats()["compiles"] == 1
        launch_saxpy(runtime, context, queue)  # same source, new program
        stats = cache.stats()
        assert stats["compiles"] == 1  # zero recompiles
        assert stats["hits"] >= 1
        assert runtime.tier_counts["vectorized"] == 2

    def test_cache_shared_across_runtimes(self):
        """Two nodes (two CLRuntimes) building the same tenant source
        share one compiled artifact -- the serve/Batcher scenario."""
        cache = VectorizeCache()
        rt_a, ctx_a, q_a = make_runtime(cache=cache)
        rt_b, ctx_b, q_b = make_runtime(cache=cache)
        launch_saxpy(rt_a, ctx_a, q_a)
        launch_saxpy(rt_b, ctx_b, q_b)
        stats = cache.stats()
        assert stats["compiles"] == 1 and stats["hits"] == 1

    def test_vectorize_stats_surface(self):
        runtime, context, queue = make_runtime()
        launch_saxpy(runtime, context, queue)
        stats = runtime.vectorize_stats()
        assert stats["compiles"] == 1 and stats["entries"] == 1


class TestOptOut:
    def test_runtime_level_disable(self):
        cache = VectorizeCache()
        runtime, context, queue = make_runtime(vectorize=False, cache=cache)
        event, y = launch_saxpy(runtime, context, queue)
        assert event.tier == "interpreter"
        assert cache.stats()["compiles"] == 0  # never consulted
        assert np.allclose(y.read().view(np.float32), 3.0)

    def test_build_flag_disable(self):
        runtime, context, queue = make_runtime()
        event, y = launch_saxpy(runtime, context, queue,
                                options="-haocl-no-vectorize")
        assert event.tier == "interpreter"
        assert np.allclose(y.read().view(np.float32), 3.0)

    def test_build_flag_is_per_program(self):
        runtime, context, queue = make_runtime()
        event_slow, _ = launch_saxpy(runtime, context, queue,
                                     options="-haocl-no-vectorize")
        event_fast, _ = launch_saxpy(runtime, context, queue)
        assert event_slow.tier == "interpreter"
        assert event_fast.tier == "vectorized"


class TestAliasFallback:
    def test_aliased_launch_falls_back_to_interpreter(self):
        runtime, context, queue = make_runtime()
        program = runtime.build_program(
            runtime.create_program_with_source(context, SAXPY))
        kernel = runtime.create_kernel(program, "saxpy")
        y = runtime.create_buffer(context, enums.CL_MEM_READ_WRITE, N * 4,
                                  host_data=np.ones(N, dtype=np.float32))
        kernel.set_arg(0, y)
        kernel.set_arg(1, y)  # same buffer read and written
        kernel.set_arg(2, np.float32(2.0))
        kernel.set_arg(3, np.int32(N))
        event = runtime.enqueue_nd_range_kernel(queue, kernel, (N,))
        assert event.tier == "interpreter"
        assert np.allclose(y.read().view(np.float32), 3.0)
