"""Tests for the analytic device models."""

import pytest

from repro.clc.analysis import ResolvedCost
from repro.ocl import cpu_xeon_e5_2686, enums, fpga_vu9p, gpu_tesla_p4, model_by_name


def cost(flops=0.0, int_ops=0.0, rd=0.0, wr=0.0):
    return ResolvedCost(flops, int_ops, rd, wr, 0.0, 0.0)


class TestCatalog:
    def test_lookup_by_alias(self):
        assert model_by_name("gpu").name == gpu_tesla_p4().name
        assert model_by_name("fpga").name == fpga_vu9p().name
        assert model_by_name("cpu").name == cpu_xeon_e5_2686().name

    def test_unknown_model(self):
        with pytest.raises(ValueError):
            model_by_name("tpu")

    def test_device_types(self):
        assert gpu_tesla_p4().device_type == enums.CL_DEVICE_TYPE_GPU
        assert cpu_xeon_e5_2686().device_type == enums.CL_DEVICE_TYPE_CPU
        assert fpga_vu9p().device_type == enums.CL_DEVICE_TYPE_ACCELERATOR

    def test_type_names(self):
        assert gpu_tesla_p4().type_name == "GPU"
        assert fpga_vu9p().type_name == "FPGA"

    def test_describe_keys(self):
        info = gpu_tesla_p4().describe()
        for key in ("name", "vendor", "compute_units", "global_mem_size"):
            assert key in info


class TestRoofline:
    def test_compute_bound_scales_with_flops(self):
        gpu = gpu_tesla_p4()
        heavy = cost(flops=10000.0, rd=4.0)
        t1 = gpu.kernel_time(heavy, 1_000_000)
        t2 = gpu.kernel_time(heavy, 2_000_000)
        assert t2 > t1
        assert t2 / t1 == pytest.approx(2.0, rel=0.05)

    def test_memory_bound_kernel_limited_by_bandwidth(self):
        gpu = gpu_tesla_p4()
        streaming = cost(flops=1.0, rd=64.0, wr=64.0)
        items = 10_000_000
        t = gpu.kernel_time(streaming, items)
        achieved = gpu.mem_bandwidth_gbs * gpu.mem_efficiency * 1e9
        bandwidth_bound = items * 128 / achieved
        assert t == pytest.approx(bandwidth_bound + gpu.launch_overhead_s, rel=0.01)

    def test_gather_kernels_slower_than_streaming(self):
        gpu = gpu_tesla_p4()
        streaming = cost(flops=1.0, rd=64.0, wr=64.0)
        from repro.clc.analysis import ResolvedCost

        gather = ResolvedCost(1.0, 0.0, 64.0, 64.0, 0.0, 0.0,
                              indirect_access=True)
        items = 1_000_000
        assert gpu.kernel_time(gather, items) > 2 * gpu.kernel_time(streaming, items)

    def test_launch_overhead_floor(self):
        gpu = gpu_tesla_p4()
        assert gpu.kernel_time(cost(flops=1.0), 1) >= gpu.launch_overhead_s

    def test_none_cost_gives_overhead_only(self):
        gpu = gpu_tesla_p4()
        assert gpu.kernel_time(None, 10**9) == gpu.launch_overhead_s

    def test_gpu_beats_cpu_on_dense_compute(self):
        dense = cost(flops=2000.0, rd=8.0)
        items = 1_000_000
        assert gpu_tesla_p4().kernel_time(dense, items) < \
            cpu_xeon_e5_2686().kernel_time(dense, items)

    def test_irregular_kernels_penalised_most_on_fpga(self):
        irregular = cost(flops=0.0, int_ops=100.0, rd=16.0)
        fpga = fpga_vu9p()
        regular = cost(flops=100.0, rd=16.0)
        assert fpga.effective_gflops(irregular) < fpga.effective_gflops(regular)

    def test_fpga_streaming_bonus_applies_to_regular(self):
        fpga = fpga_vu9p()
        regular = cost(flops=100.0, rd=4.0)
        assert fpga.effective_gflops(regular) > \
            fpga.peak_gflops * fpga.compute_efficiency


class TestTransfersAndEnergy:
    def test_transfer_time_linear_in_bytes(self):
        gpu = gpu_tesla_p4()
        t1 = gpu.transfer_time(1 << 20)
        t2 = gpu.transfer_time(2 << 20)
        assert (t2 - gpu.launch_overhead_s) == pytest.approx(
            2 * (t1 - gpu.launch_overhead_s)
        )

    def test_energy_busy_plus_idle(self):
        gpu = gpu_tesla_p4()
        joules = gpu.energy(busy_s=1.0, total_s=2.0)
        assert joules == pytest.approx(gpu.peak_power_w + gpu.idle_power_w)

    def test_energy_default_no_idle(self):
        gpu = gpu_tesla_p4()
        assert gpu.energy(1.0) == pytest.approx(gpu.peak_power_w)

    def test_fpga_lower_power_than_cpu(self):
        assert fpga_vu9p().peak_power_w < cpu_xeon_e5_2686().peak_power_w
