"""Tests for the experiment harnesses (reduced scales)."""

import pytest

from repro.experiments import fig2, fig3, overhead, table1
from repro.experiments.harness import (
    hetero_split,
    make_session,
    run_breakdown,
    run_elapsed,
)
from repro.experiments.reporting import ascii_bars, fmt_seconds, format_table


class TestReporting:
    def test_format_table_alignment(self):
        out = format_table(["a", "bb"], [[1, 22], [333, 4]])
        lines = out.split("\n")
        assert len({len(line) for line in lines}) == 1  # equal widths

    def test_ascii_bars_handles_none(self):
        out = ascii_bars(["x", "y"], [1.0, None])
        assert "N/A" in out

    def test_fmt_seconds_units(self):
        assert fmt_seconds(2.5) == "2.50s"
        assert fmt_seconds(0.0025) == "2.50ms"
        assert fmt_seconds(2.5e-6) == "2us"
        assert fmt_seconds(None) == "N/A"


class TestHarness:
    def test_hetero_split_ratio(self):
        assert hetero_split(1) == (1, 0)
        assert hetero_split(2) == (1, 1)
        assert hetero_split(8) == (6, 2)
        assert hetero_split(16) == (12, 4)

    def test_make_session_each_system(self):
        for system in ("local-gpu", "local-fpga", "haocl-gpu",
                       "haocl-fpga", "haocl-hetero", "snucl"):
            session = make_session(system, nodes=2)
            assert session.devices
            session.close()

    def test_unknown_system(self):
        with pytest.raises(ValueError):
            make_session("tpu-pod")

    def test_run_breakdown_keys(self):
        breakdown = run_breakdown("knn", "haocl-gpu", nodes=2, scale=50_000)
        assert set(breakdown) == {"create", "transfer", "compute", "total"}

    def test_run_elapsed_unsupported_returns_none(self):
        assert run_elapsed("cfd", "snucl", nodes=2, scale=20_000) is None


class TestTable1:
    def test_rows_cover_all_apps(self):
        rows = table1.run()
        assert [r["app"] for r in rows] == \
            ["MatrixMul", "CFD", "kNN", "BFS", "SpMV"]

    def test_sizes_match_paper(self):
        for row in table1.run():
            paper_mb = float(row["paper_size"].replace("MB", "").replace(
                "GB", "")) * (1000 if "GB" in row["paper_size"] else 1)
            ours_mb = row["measured_bytes"] / 1e6
            assert abs(ours_mb - paper_mb) / paper_mb < 0.15


class TestFig2Reduced:
    @pytest.fixture(scope="class")
    def results(self):
        return fig2.run(
            apps=("knn",), node_counts=(1, 2, 4),
            series=("haocl-gpu", "snucl"),
            paper_scale=False, scales={"knn": 200_000},
        )

    def test_speedup_structure(self, results):
        assert set(results["knn"]["haocl-gpu"]) == {1, 2, 4}

    def test_scaling_direction(self, results):
        curve = results["knn"]["haocl-gpu"]
        assert curve[4] > curve[1]

    def test_snucl_never_better(self, results):
        for nodes, snucl_speedup in results["knn"]["snucl"].items():
            assert snucl_speedup <= results["knn"]["haocl-gpu"][nodes] * 1.001


class TestFig3Reduced:
    def test_breakdown_rows(self):
        rows = fig3.run(matrix_sizes=(500, 1500), gpu_counts=(2,))
        assert len(rows) == 2
        small, large = rows
        assert fig3.communication_ratio(large) < \
            fig3.communication_ratio(small)


class TestOverheadReduced:
    def test_overhead_positive_and_bounded(self):
        rows = overhead.run(apps=("knn",), paper_scale=False,
                            scales={"knn": 200_000})
        assert 0 <= rows[0]["overhead"] < 0.5
